package sjson

// Streaming multi-path extraction: walk the raw token stream once, descend
// only into the object members / array indexes a compiled trie asks for, skip
// everything else at tokenizer speed (no Value nodes allocated for skipped
// subtrees), and stop scanning the moment every requested path is resolved.
//
// This is the repository's stand-in for Keiser & Lemire's On-Demand JSON
// design: the caller compiles the paths it needs into an ExtractNode trie
// (see jsonpath.PathSet) and the extractor materializes exactly the subtrees
// sitting under terminal trie nodes, nothing else. Wildcard steps ($.a[*].b)
// compile into array-iteration nodes evaluated in the same single pass; it
// composes with, rather than replaces, the full tree parser only for root
// projections, which still go through Parse.

// ExtractNode is one node of a compiled extraction trie. Member edges select
// object keys, element edges select array indexes, a wild edge iterates every
// element of an array ([*]), and a terminal marks a requested path ending at
// this node (its subtree value is materialized).
// Build a trie with NewExtractNode/Member/Elem/Wild/MarkTerminal, then call
// Finalize exactly once before handing it to Parser.Extract. A finalized trie
// is immutable and safe for concurrent use by many parsers.
type ExtractNode struct {
	members   []extractMember
	memberIdx map[string]int // key → members ordinal, built past smallObjectThreshold
	elems     []extractElem  // ascending by index
	maxElem   int            // largest requested element index; -1 when none
	wild      *ExtractNode   // [*] edge: evaluated against every array element
	terminal  int            // output slot for the path ending here; -1 when interior

	// Terminal counts let the extractor resolve "everything under here is
	// missing" in O(1) when a subtree is absent or has the wrong kind, which
	// is what makes early exit exact rather than heuristic.
	nTerms      int // terminals in this subtree, including the node itself
	memberTerms int // terminals under member edges
	elemTerms   int // terminals under element edges
	wildTerms   int // terminals under the wild edge

	// wildSlots lists every terminal output slot in the wild subtree, in
	// preorder. The array walker accumulates per-element matches for these
	// slots and collapses them Hive-style (0 → missing, 1 → scalar, n → JSON
	// array) when the array closes.
	wildSlots []int
}

type extractMember struct {
	name  string
	child *ExtractNode
}

type extractElem struct {
	idx   int
	child *ExtractNode
}

// NewExtractNode returns an empty trie root.
func NewExtractNode() *ExtractNode {
	return &ExtractNode{terminal: -1, maxElem: -1}
}

// Member returns the child for an object key, creating it if absent.
func (n *ExtractNode) Member(name string) *ExtractNode {
	for _, m := range n.members {
		if m.name == name {
			return m.child
		}
	}
	c := NewExtractNode()
	n.members = append(n.members, extractMember{name: name, child: c})
	return c
}

// Elem returns the child for an array index, creating it if absent.
func (n *ExtractNode) Elem(i int) *ExtractNode {
	for _, e := range n.elems {
		if e.idx == i {
			return e.child
		}
	}
	c := NewExtractNode()
	// Keep elems sorted so the array walker can early-out past maxElem.
	pos := len(n.elems)
	for pos > 0 && n.elems[pos-1].idx > i {
		pos--
	}
	n.elems = append(n.elems, extractElem{})
	copy(n.elems[pos+1:], n.elems[pos:])
	n.elems[pos] = extractElem{idx: i, child: c}
	if i > n.maxElem {
		n.maxElem = i
	}
	return c
}

// Wild returns the child every array element is evaluated against ([*]),
// creating it if absent.
func (n *ExtractNode) Wild() *ExtractNode {
	if n.wild == nil {
		n.wild = NewExtractNode()
	}
	return n.wild
}

// MarkTerminal records that a requested path ends at this node, writing its
// value into out[slot] during extraction.
func (n *ExtractNode) MarkTerminal(slot int) { n.terminal = slot }

// Terminal returns the node's output slot, or -1 for interior nodes.
func (n *ExtractNode) Terminal() int { return n.terminal }

// Finalize computes subtree terminal counts and lookup indexes. It must be
// called on the root after the trie is fully built and before Extract; it
// returns the number of terminals in the subtree.
func (n *ExtractNode) Finalize() int {
	n.memberTerms, n.elemTerms, n.wildTerms = 0, 0, 0
	for _, m := range n.members {
		n.memberTerms += m.child.Finalize()
	}
	for _, e := range n.elems {
		n.elemTerms += e.child.Finalize()
	}
	n.wildSlots = nil
	if n.wild != nil {
		n.wildTerms = n.wild.Finalize()
		n.wildSlots = make([]int, 0, n.wildTerms)
		n.wildSlots = n.wild.appendSlots(n.wildSlots)
	}
	n.nTerms = n.memberTerms + n.elemTerms + n.wildTerms
	if n.terminal >= 0 {
		n.nTerms++
	}
	if len(n.members) > smallObjectThreshold {
		n.memberIdx = make(map[string]int, len(n.members))
		for i, m := range n.members {
			if _, dup := n.memberIdx[m.name]; !dup {
				n.memberIdx[m.name] = i
			}
		}
	} else {
		n.memberIdx = nil
	}
	return n.nTerms
}

// NumTerminals returns the finalized terminal count of the subtree.
func (n *ExtractNode) NumTerminals() int { return n.nTerms }

// appendSlots appends every terminal slot in the subtree in preorder.
func (n *ExtractNode) appendSlots(slots []int) []int {
	if n.terminal >= 0 {
		slots = append(slots, n.terminal)
	}
	for _, m := range n.members {
		slots = m.child.appendSlots(slots)
	}
	for _, e := range n.elems {
		slots = e.child.appendSlots(slots)
	}
	if n.wild != nil {
		slots = n.wild.appendSlots(slots)
	}
	return slots
}

// lookupMember resolves an object key to its trie ordinal and child without
// allocating. The returned ordinal indexes the per-object seen set that gives
// duplicate keys first-occurrence-wins semantics, matching Value.Get.
func (n *ExtractNode) lookupMember(key []byte) (int, *ExtractNode) {
	if n.memberIdx != nil {
		if i, ok := n.memberIdx[string(key)]; ok {
			return i, n.members[i].child
		}
		return -1, nil
	}
	for i := range n.members {
		if n.members[i].name == string(key) {
			return i, n.members[i].child
		}
	}
	return -1, nil
}

func (n *ExtractNode) elemChild(i int) *ExtractNode {
	for _, e := range n.elems {
		if e.idx == i {
			return e.child
		}
		if e.idx > i {
			break
		}
	}
	return nil
}

// Extract scans one document and materializes exactly the subtrees under the
// trie's terminals. out must have at least trie.NumTerminals() entries; slot i
// receives the value of the terminal marked with slot i, nil when the path is
// missing from the document (an explicit JSON null yields a non-nil null
// Value, preserving the NULL-vs-missing distinction Eval makes). Terminals
// under wild edges receive the Hive-style wildcard collapse: no element
// matched → nil, one match → the value itself, several → a JSON array of the
// matches, nested wildcards collapsing per level — byte-for-byte what
// Parse + Eval would produce. Returned is
// the number of input bytes actually scanned: when every requested path
// resolves before the end of the document the extractor stops immediately,
// and skipped suffix bytes are metered as ParseStats.BytesSkipped rather than
// BytesScanned.
//
// Skipped subtrees are validated structurally (balanced brackets, terminated
// strings, bounded depth) but not grammatically — a malformed region the
// extractor never needs to descend into may go undetected where Parse would
// report an error. Materialized subtrees get the full parser, so extracted
// values are byte-for-byte what Parse would have produced.
func (p *Parser) Extract(data []byte, trie *ExtractNode, out []*Value) (scanned int, err error) {
	for i := range out {
		out[i] = nil
	}
	p.data = data
	p.pos = 0
	p.depth = 0
	if trie == nil || trie.nTerms == 0 {
		p.stats.BytesSkipped += int64(len(data))
		p.stats.Documents++
		return 0, nil
	}
	r := extractRun{p: p, out: out, remaining: trie.nTerms}
	p.skipSpace()
	err = r.value(trie, false)
	if err == nil && !r.truncated {
		// The root value was scanned to completion: hold the document to the
		// same trailing-garbage standard as Parse. After a mid-scan early
		// exit the tail is by design never validated.
		p.skipSpace()
		if p.pos != len(p.data) {
			err = p.errf("unexpected trailing data")
		}
	}
	scanned = p.pos
	if scanned > len(data) {
		scanned = len(data)
	}
	p.stats.BytesScanned += int64(scanned)
	p.stats.BytesSkipped += int64(len(data) - scanned)
	p.stats.Documents++
	return scanned, err
}

// extractRun is the per-document state of one Extract call.
type extractRun struct {
	p         *Parser
	out       []*Value
	remaining int  // unresolved terminals; 0 triggers early exit
	done      bool // all terminals settled: unwind without scanning further
	truncated bool // the unwind skipped input (vs. resolving at a natural end)
	frameTop  int  // open wildcard frames (index into p.wildFrames)
}

// wildFrame accumulates per-element matches for one open wildcard array: one
// match list per terminal slot of the wild subtree. Frames are pooled on the
// Parser so steady-state wildcard extraction allocates nothing for the
// bookkeeping itself.
type wildFrame struct {
	slots []int
	acc   [][]*Value
}

// pushFrame opens a wildcard frame covering the given terminal slots.
//
// The terminals a frame covers stay unresolved until the frame closes —
// everything evaluated under a wild edge runs "governed" (resolution
// suppressed) — so r.remaining > 0 for as long as any frame is open and the
// early-exit unwind can never fire mid-array with matches still pending.
func (r *extractRun) pushFrame(slots []int) *wildFrame {
	p := r.p
	if r.frameTop >= len(p.wildFrames) {
		p.wildFrames = append(p.wildFrames, new(wildFrame))
	}
	f := p.wildFrames[r.frameTop]
	r.frameTop++
	f.slots = slots
	if cap(f.acc) < len(slots) {
		f.acc = make([][]*Value, len(slots))
	} else {
		f.acc = f.acc[:len(slots)]
	}
	for i := range f.acc {
		f.acc[i] = f.acc[i][:0]
	}
	return f
}

// harvest moves the just-evaluated element's slot values into the frame's
// match lists, applying Eval's filter: missing values and explicit JSON
// nulls do not count as matches.
func (r *extractRun) harvest(f *wildFrame) {
	for i, slot := range f.slots {
		if v := r.out[slot]; v != nil {
			r.out[slot] = nil
			if v.kind != KindNull {
				f.acc[i] = append(f.acc[i], v)
			}
		}
	}
}

// closeFrame collapses each slot's matches Hive-style — 0 → missing, 1 → the
// value itself, n → a JSON array built in the arena — and, for an ungoverned
// frame (no enclosing wildcard), resolves every covered terminal.
func (r *extractRun) closeFrame(f *wildFrame, governed bool) {
	for i, slot := range f.slots {
		switch matches := f.acc[i]; len(matches) {
		case 0:
			r.out[slot] = nil
		case 1:
			r.out[slot] = matches[0]
		default:
			v := r.p.newValue()
			v.kind = KindArray
			v.arrVal = append(v.arrVal, matches...)
			r.out[slot] = v
		}
	}
	r.frameTop--
	if !governed {
		r.resolve(len(f.slots))
	}
}

// resolve marks k terminals as settled (missing or filled) and flips done
// when none remain.
func (r *extractRun) resolve(k int) {
	if k == 0 {
		return
	}
	r.remaining -= k
	if r.remaining <= 0 {
		r.done = true
	}
}

// exit records an early unwind that leaves input unscanned.
func (r *extractRun) exit() {
	r.truncated = true
}

// value consumes the JSON value at p.pos under trie node n. p.pos must be on
// the first byte of the value (whitespace already skipped). governed is true
// when n was reached through a wild edge: every resolve is suppressed, because
// the enclosing wildcard frame settles its covered terminals in one shot when
// its array closes (a per-element "resolution" would be counted once per
// element instead of once per terminal).
func (r *extractRun) value(n *ExtractNode, governed bool) error {
	p := r.p
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of input")
	}
	if n.terminal >= 0 {
		// A requested path ends here: materialize the whole subtree with the
		// real parser, then settle any deeper terminals (covering sets like
		// {$.a, $.a.b} or {$.a[*], $.a[*].b}) by walking the parsed value.
		v, err := p.parseValue()
		if err != nil {
			return err
		}
		r.out[n.terminal] = v
		if !governed {
			r.resolve(1)
		}
		r.fill(v, n, governed)
		return nil
	}
	switch c := p.data[p.pos]; c {
	case '{':
		// Element and wild edges cannot match an object.
		if !governed {
			r.resolve(n.elemTerms + n.wildTerms)
			if r.done {
				r.exit() // object left unscanned
				return nil
			}
		}
		return r.object(n, governed)
	case '[':
		if !governed {
			r.resolve(n.memberTerms) // member edges cannot match an array
			if r.done {
				r.exit() // array left unscanned
				return nil
			}
		}
		return r.array(n, governed)
	default:
		// Scalar under an interior node: every deeper path is missing.
		if !governed {
			r.resolve(n.nTerms)
			if r.done {
				r.exit() // scalar left unscanned
				return nil
			}
		}
		return p.skipValue()
	}
}

// fill settles the descendants of a terminal node against its materialized
// value: present descendants are written to their slots, absent ones are
// resolved as missing. Value.Get/Index on nil or mismatched kinds return nil,
// which is exactly the missing semantics Eval uses. With a wild edge the walk
// becomes a full trie evaluation: per-element matches accumulate in a frame
// exactly as the streaming array walker does.
func (r *extractRun) fill(v *Value, n *ExtractNode, governed bool) {
	for _, m := range n.members {
		r.fillChild(v.Get(m.name), m.child, governed)
	}
	for _, e := range n.elems {
		r.fillChild(v.Index(e.idx), e.child, governed)
	}
	if n.wild != nil {
		r.fillWild(v, n, governed)
	}
}

func (r *extractRun) fillChild(v *Value, n *ExtractNode, governed bool) {
	if n.terminal >= 0 {
		if v != nil {
			r.out[n.terminal] = v
		}
		if !governed {
			r.resolve(1)
		}
	}
	r.fill(v, n, governed)
}

// fillWild evaluates n's wild edge against an already-parsed value,
// replicating Eval's wildcard semantics: non-arrays match nothing, per-element
// matches collapse 0/1/n at the array boundary.
func (r *extractRun) fillWild(v *Value, n *ExtractNode, governed bool) {
	if v == nil || v.kind != KindArray {
		if !governed {
			r.resolve(n.wildTerms)
		}
		return
	}
	f := r.pushFrame(n.wildSlots)
	for _, elem := range v.arrVal {
		r.fillChild(elem, n.wild, true)
		r.harvest(f)
	}
	r.closeFrame(f, governed)
}

func (r *extractRun) object(n *ExtractNode, governed bool) error {
	p := r.p
	p.depth++
	if p.depth > maxDepth {
		return p.errf("nesting exceeds %d levels", maxDepth)
	}
	defer func() { p.depth-- }()
	p.pos++ // consume '{'

	// First-occurrence-wins for duplicate keys, matching Value.Get: a member
	// ordinal already seen is skipped, not re-extracted.
	var seen uint64
	var seenBig []bool
	if len(n.members) > 64 {
		seenBig = make([]bool, len(n.members))
	}
	wasSeen := func(ord int) bool {
		if seenBig != nil {
			return seenBig[ord]
		}
		return seen&(1<<uint(ord)) != 0
	}
	markSeen := func(ord int) {
		if seenBig != nil {
			seenBig[ord] = true
		} else {
			seen |= 1 << uint(ord)
		}
	}

	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == '}' {
		p.pos++
	} else {
	memberLoop:
		for {
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != '"' {
				return p.errf("expected object key string")
			}
			key, err := p.scanKey()
			if err != nil {
				return err
			}
			ord, child := n.lookupMember(key)
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != ':' {
				return p.errf("expected ':' after object key")
			}
			p.pos++
			p.skipSpace()
			if child != nil && !wasSeen(ord) {
				markSeen(ord)
				if err := r.value(child, governed); err != nil {
					return err
				}
				if r.done {
					r.exit() // rest of the object left unscanned
					return nil
				}
			} else if err := p.skipValue(); err != nil {
				return err
			}
			p.skipSpace()
			if p.pos >= len(p.data) {
				return p.errf("unterminated object")
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case '}':
				p.pos++
				break memberLoop
			default:
				return p.errf("expected ',' or '}' in object")
			}
		}
	}
	// Requested keys that never appeared: their whole subtrees are missing.
	if !governed {
		for i := range n.members {
			if !wasSeen(i) {
				r.resolve(n.members[i].child.nTerms)
			}
		}
	}
	return nil
}

func (r *extractRun) array(n *ExtractNode, governed bool) error {
	p := r.p
	p.depth++
	if p.depth > maxDepth {
		return p.errf("nesting exceeds %d levels", maxDepth)
	}
	defer func() { p.depth-- }()
	p.pos++ // consume '['

	// A wild edge opens a frame: every element streams through n.wild with
	// resolution suppressed, its slot values harvested into per-slot match
	// lists, collapsed when the ']' arrives.
	var f *wildFrame
	if n.wild != nil {
		f = r.pushFrame(n.wildSlots)
	}
	idx := 0
	p.skipSpace()
	if p.pos < len(p.data) && p.data[p.pos] == ']' {
		p.pos++
	} else {
	elemLoop:
		for {
			p.skipSpace()
			child := n.elemChild(idx)
			switch {
			case child != nil && f != nil:
				// A point index and the wildcard both want this element: the
				// bytes can only be consumed once, so tree-parse the element
				// and settle both subtrees from the value.
				v, err := p.parseValue()
				if err != nil {
					return err
				}
				r.fillChild(v, child, governed)
				r.fillChild(v, n.wild, true)
				r.harvest(f)
			case child != nil:
				if err := r.value(child, governed); err != nil {
					return err
				}
				if r.done {
					r.exit() // rest of the array left unscanned
					return nil
				}
			case f != nil:
				if err := r.value(n.wild, true); err != nil {
					return err
				}
				r.harvest(f)
			default:
				if err := p.skipValue(); err != nil {
					return err
				}
			}
			idx++
			p.skipSpace()
			if p.pos >= len(p.data) {
				return p.errf("unterminated array")
			}
			switch p.data[p.pos] {
			case ',':
				p.pos++
			case ']':
				p.pos++
				break elemLoop
			default:
				return p.errf("expected ',' or ']' in array")
			}
		}
	}
	// Requested indexes past the array's actual length are missing.
	if !governed {
		for _, e := range n.elems {
			if e.idx >= idx {
				r.resolve(e.child.nTerms)
			}
		}
	}
	if f != nil {
		r.closeFrame(f, governed)
	}
	return nil
}

// scanKey consumes the object key string at p.pos (opening quote included)
// and returns its bytes. Keys without escapes are returned as a window into
// the input with zero allocation; escaped keys fall back to the full string
// parser.
func (p *Parser) scanKey() ([]byte, error) {
	start := p.pos + 1
	for i := start; i < len(p.data); i++ {
		c := p.data[i]
		if c == '"' {
			p.pos = i + 1
			return p.data[start:i], nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
	}
	s, err := p.parseStringLiteral()
	if err != nil {
		return nil, err
	}
	return []byte(s), nil
}

// skipValue advances past one JSON value without materializing anything.
// Strings and bracket nesting are validated (so the scan cannot desync), but
// the interior grammar of skipped composites — comma/colon placement, number
// syntax — is not: the extractor only vouches for the bytes it extracts.
func (p *Parser) skipValue() error {
	if p.pos >= len(p.data) {
		return p.errf("unexpected end of input")
	}
	switch c := p.data[p.pos]; {
	case c == '"':
		return p.skipString()
	case c == '{' || c == '[':
		return p.skipComposite()
	case c == 't':
		return p.expect("true")
	case c == 'f':
		return p.expect("false")
	case c == 'n':
		return p.expect("null")
	case c == '-' || (c >= '0' && c <= '9'):
		p.skipNumber()
		return nil
	default:
		return p.errf("unexpected character %q", c)
	}
}

func (p *Parser) skipString() error {
	p.pos++ // consume opening quote
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case '"':
			p.pos++
			return nil
		case '\\':
			p.pos += 2
		default:
			p.pos++
		}
	}
	return p.errf("unterminated string")
}

// skipComposite skips a balanced {...} or [...] region iteratively, reusing
// a bracket stack owned by the parser so nested skips allocate nothing.
func (p *Parser) skipComposite() error {
	stack := p.skipStack[:0]
	defer func() { p.skipStack = stack }()
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; c {
		case '{', '[':
			stack = append(stack, c)
			if p.depth+len(stack) > maxDepth {
				return p.errf("nesting exceeds %d levels", maxDepth)
			}
			p.pos++
		case '}', ']':
			open := stack[len(stack)-1]
			if (c == '}') != (open == '{') {
				return p.errf("mismatched %q", c)
			}
			stack = stack[:len(stack)-1]
			p.pos++
			if len(stack) == 0 {
				return nil
			}
		case '"':
			if err := p.skipString(); err != nil {
				return err
			}
		default:
			p.pos++
		}
	}
	return p.errf("unterminated %q", rune(stack[0]))
}

func (p *Parser) skipNumber() {
	for p.pos < len(p.data) {
		switch c := p.data[p.pos]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p.pos++
		default:
			return
		}
	}
}
