package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/simtime"
	"repro/internal/warehouse"
)

// twoTableEngine builds a warehouse with orders and items tables for join
// edge cases.
func twoTableEngine(t *testing.T) *Engine {
	t.Helper()
	clock := simtime.NewSim(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
	fs := dfs.New(dfs.WithClock(clock))
	wh := warehouse.New(fs, warehouse.WithClock(clock))
	wh.CreateDatabase("db")
	orders := orc.Schema{Columns: []orc.Column{
		{Name: "id", Type: datum.TypeInt64},
		{Name: "item_id", Type: datum.TypeInt64},
		{Name: "payload", Type: datum.TypeString},
	}}
	items := orc.Schema{Columns: []orc.Column{
		{Name: "item_id", Type: datum.TypeInt64},
		{Name: "name", Type: datum.TypeString},
	}}
	if err := wh.CreateTable("db", "orders", orders); err != nil {
		t.Fatal(err)
	}
	if err := wh.CreateTable("db", "items", items); err != nil {
		t.Fatal(err)
	}
	var orows [][]datum.Datum
	for i := 0; i < 12; i++ {
		orows = append(orows, []datum.Datum{
			datum.Int(int64(i)),
			datum.Int(int64(i % 4)),
			datum.Str(fmt.Sprintf(`{"qty":%d}`, i+1)),
		})
	}
	if _, err := wh.AppendRows("db", "orders", orows); err != nil {
		t.Fatal(err)
	}
	var irows [][]datum.Datum
	for i := 0; i < 4; i++ {
		irows = append(irows, []datum.Datum{
			datum.Int(int64(i)),
			datum.Str(fmt.Sprintf("item-%d", i)),
		})
	}
	// NULL join key: never matches.
	irows = append(irows, []datum.Datum{datum.NullOf(datum.TypeInt64), datum.Str("ghost")})
	if _, err := wh.AppendRows("db", "items", irows); err != nil {
		t.Fatal(err)
	}
	return NewEngine(wh, WithDefaultDB("db"))
}

func TestJoinTwoTables(t *testing.T) {
	e := twoTableEngine(t)
	rs := mustQuery(t, e, `
		SELECT o.id, i.name, get_json_object(o.payload, '$.qty') q
		FROM db.orders o JOIN db.items i ON o.item_id = i.item_id
		ORDER BY o.id LIMIT 3`)
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[1][1].S != "item-1" || rs.Rows[1][2].S != "2" {
		t.Errorf("row = %v", rs.Rows[1])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	e := twoTableEngine(t)
	rs := mustQuery(t, e, `
		SELECT COUNT(*) c FROM db.orders o JOIN db.items i ON o.item_id = i.item_id`)
	if rs.Rows[0][0].I != 12 {
		t.Errorf("join count = %v, want 12 (ghost row must not match)", rs.Rows[0][0])
	}
}

func TestJoinAmbiguousColumnRejected(t *testing.T) {
	e := twoTableEngine(t)
	if _, _, err := e.Query(`
		SELECT item_id FROM db.orders o JOIN db.items i ON o.item_id = i.item_id`); err == nil {
		t.Error("ambiguous item_id should error")
	}
}

func TestJoinAggregateOverBothSides(t *testing.T) {
	e := twoTableEngine(t)
	rs := mustQuery(t, e, `
		SELECT i.name n, COUNT(*) c, SUM(cast_double(get_json_object(o.payload, '$.qty'))) s
		FROM db.orders o JOIN db.items i ON o.item_id = i.item_id
		GROUP BY i.name ORDER BY n`)
	if len(rs.Rows) != 4 {
		t.Fatalf("groups = %v", rs.Rows)
	}
	// item-0 matches orders 0,4,8 → qty 1+5+9 = 15.
	if rs.Rows[0][0].S != "item-0" || rs.Rows[0][1].I != 3 || rs.Rows[0][2].F != 15 {
		t.Errorf("group 0 = %v", rs.Rows[0])
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := newTestEngine(t)
	// NULL OR TRUE = TRUE; NULL AND TRUE = NULL (not true).
	rs := mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t
		WHERE get_json_object(sale_logs, '$.absent') > 5 OR date = '20190101'`)
	if rs.Rows[0][0].I != 1 {
		t.Errorf("NULL OR TRUE count = %v, want 1", rs.Rows[0][0])
	}
	rs = mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t
		WHERE get_json_object(sale_logs, '$.absent') > 5 AND date = '20190101'`)
	if rs.Rows[0][0].I != 0 {
		t.Errorf("NULL AND TRUE count = %v, want 0", rs.Rows[0][0])
	}
	rs = mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t WHERE NOT (date = '20190101')`)
	if rs.Rows[0][0].I != 30 {
		t.Errorf("NOT count = %v, want 30", rs.Rows[0][0])
	}
}

func TestCountExprSkipsNulls(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT COUNT(get_json_object(sale_logs, '$.absent')) a,
		       COUNT(get_json_object(sale_logs, '$.turnover')) b,
		       COUNT(*) c
		FROM mydb.t`)
	row := rs.Rows[0]
	if row[0].I != 0 || row[1].I != 31 || row[2].I != 31 {
		t.Errorf("counts = %v", row)
	}
}

func TestDistinctWithOrderByAndLimit(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT DISTINCT get_json_object(sale_logs, '$.sale_count') sc
		FROM mydb.t ORDER BY cast_bigint(get_json_object(sale_logs, '$.sale_count')) DESC LIMIT 3`)
	if len(rs.Rows) != 3 || rs.Rows[0][0].S != "7" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestMultipleOrderKeys(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT mall_id, date FROM mydb.t ORDER BY mall_id ASC, date DESC LIMIT 2`)
	if rs.Rows[0][1].S != "20190131" || rs.Rows[1][1].S != "20190130" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT cast_bigint(get_json_object(sale_logs, '$.absent')) + 1 v
		FROM mydb.t LIMIT 1`)
	if !rs.Rows[0][0].Null {
		t.Errorf("NULL + 1 = %v, want NULL", rs.Rows[0][0])
	}
	rs = mustQuery(t, e, `SELECT 10 / 0 v FROM mydb.t LIMIT 1`)
	if !rs.Rows[0][0].Null {
		t.Errorf("division by zero = %v, want NULL", rs.Rows[0][0])
	}
	rs = mustQuery(t, e, `SELECT 7 % 3 v, -5 u FROM mydb.t LIMIT 1`)
	if rs.Rows[0][0].I != 1 || rs.Rows[0][1].I != -5 {
		t.Errorf("mod/neg = %v", rs.Rows[0])
	}
}

func TestParenthesizedPrecedence(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT (1 + 2) * 3 a, 1 + 2 * 3 b FROM mydb.t LIMIT 1`)
	if rs.Rows[0][0].I != 9 || rs.Rows[0][1].I != 7 {
		t.Errorf("precedence = %v", rs.Rows[0])
	}
}

func TestLimitZeroAndOversized(t *testing.T) {
	e := newTestEngine(t)
	if rs := mustQuery(t, e, `SELECT date FROM mydb.t LIMIT 0`); len(rs.Rows) != 0 {
		t.Errorf("LIMIT 0 rows = %d", len(rs.Rows))
	}
	if rs := mustQuery(t, e, `SELECT date FROM mydb.t LIMIT 10000`); len(rs.Rows) != 31 {
		t.Errorf("oversized LIMIT rows = %d", len(rs.Rows))
	}
}

func TestStringFunctionsAndConcat(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT concat(mall_id, '-', date) cd, lower(upper(mall_id)) m
		FROM mydb.t WHERE date = '20190102'`)
	if rs.Rows[0][0].S != "0001-20190102" || rs.Rows[0][1].S != "0001" {
		t.Errorf("rows = %v", rs.Rows[0])
	}
}

func TestCommentAndWhitespaceTolerance(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		-- leading comment
		SELECT date -- trailing comment
		FROM mydb.t  WHERE  date='20190103'`)
	if len(rs.Rows) != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestEscapedStringLiterals(t *testing.T) {
	toks, err := Lex(`SELECT 'it''s' , "dq\"esc"`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tok := range toks {
		if tok.Kind == TokString {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 2 || strs[0] != "it's" || strs[1] != `dq"esc` {
		t.Errorf("strings = %q", strs)
	}
}

func TestMisonBackendAggregates(t *testing.T) {
	e := newTestEngine(t, WithBackend(MisonBackend{}))
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.sale_count') sc, COUNT(*) c
		FROM mydb.t GROUP BY get_json_object(sale_logs, '$.sale_count') ORDER BY sc`)
	total := int64(0)
	for _, row := range rs.Rows {
		total += row[1].I
	}
	if total != 31 {
		t.Errorf("mison aggregate total = %d", total)
	}
}

func TestPlanStringContainsJoin(t *testing.T) {
	e := twoTableEngine(t)
	plan, _, err := e.PlanOnly(`
		SELECT o.id FROM db.orders o JOIN db.items i ON o.item_id = i.item_id LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "HashJoin build=db.items") {
		t.Errorf("plan missing join:\n%s", plan.String())
	}
}

func TestConcurrentQueries(t *testing.T) {
	e := newTestEngine(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, _, err := e.Query(fmt.Sprintf(
				`SELECT get_json_object(sale_logs, '$.turnover') FROM mydb.t WHERE date = '201901%02d'`, i+1))
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	e := newTestEngine(t)
	// sale_count groups have sizes 4 or 5 (31 days, values 1..7).
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.sale_count') sc, COUNT(*) c
		FROM mydb.t
		GROUP BY get_json_object(sale_logs, '$.sale_count')
		HAVING COUNT(*) > 4
		ORDER BY sc`)
	for _, row := range rs.Rows {
		if row[1].I <= 4 {
			t.Errorf("HAVING leaked group %v", row)
		}
	}
	if len(rs.Rows) == 0 || len(rs.Rows) >= 7 {
		t.Errorf("HAVING groups = %d, want a strict subset", len(rs.Rows))
	}
}

func TestHavingWithUnprojectedAggregate(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT mall_id FROM mydb.t
		GROUP BY mall_id
		HAVING SUM(cast_double(get_json_object(sale_logs, '$.turnover'))) > 1000`)
	if len(rs.Rows) != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
	rs = mustQuery(t, e, `
		SELECT mall_id FROM mydb.t GROUP BY mall_id
		HAVING SUM(cast_double(get_json_object(sale_logs, '$.turnover'))) > 1000000`)
	if len(rs.Rows) != 0 {
		t.Errorf("rows = %v, want none", rs.Rows)
	}
}

func TestInList(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT date FROM mydb.t WHERE date IN ('20190103', '20190105', '20250101') ORDER BY date`)
	if len(rs.Rows) != 2 || rs.Rows[0][0].S != "20190103" || rs.Rows[1][0].S != "20190105" {
		t.Errorf("rows = %v", rs.Rows)
	}
	rs = mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t WHERE date NOT IN ('20190101')`)
	if rs.Rows[0][0].I != 30 {
		t.Errorf("NOT IN count = %v", rs.Rows[0][0])
	}
}

func TestLikePatterns(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		pattern string
		want    int64
	}{
		{"201901%", 31},
		{"%31", 1},
		{"2019013_", 2}, // 30, 31
		{"%019__3%", 2}, // '3' six chars after "019" → days 30, 31
		{"nope", 0},
		{"20190102", 1},
	}
	for _, c := range cases {
		rs := mustQuery(t, e, fmt.Sprintf(
			`SELECT COUNT(*) n FROM mydb.t WHERE date LIKE '%s'`, c.pattern))
		if rs.Rows[0][0].I != c.want {
			t.Errorf("LIKE %q = %v, want %d", c.pattern, rs.Rows[0][0], c.want)
		}
	}
	rs := mustQuery(t, e, `SELECT COUNT(*) n FROM mydb.t WHERE date NOT LIKE '201901%'`)
	if rs.Rows[0][0].I != 0 {
		t.Errorf("NOT LIKE = %v", rs.Rows[0][0])
	}
	// LIKE on NULL input is not true.
	rs = mustQuery(t, e, `
		SELECT COUNT(*) n FROM mydb.t WHERE get_json_object(sale_logs, '$.absent') LIKE '%'`)
	if rs.Rows[0][0].I != 0 {
		t.Errorf("LIKE on NULL = %v", rs.Rows[0][0])
	}
}

func TestNotBetween(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT COUNT(*) n FROM mydb.t WHERE date NOT BETWEEN '20190102' AND '20190130'`)
	if rs.Rows[0][0].I != 2 {
		t.Errorf("NOT BETWEEN = %v, want 2", rs.Rows[0][0])
	}
}

func TestSparserPrefilterSkipsParsing(t *testing.T) {
	// Selective equality on item_name: only one row matches.
	sql := `SELECT date FROM mydb.t WHERE get_json_object(sale_logs, '$.item_name') = 'item-17'`
	plain := newTestEngine(t)
	sp := newTestEngine(t, WithSparser(true))

	rp := mustQuery(t, plain, sql)
	rs, m, err := sp.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rs.String() != rp.String() {
		t.Fatalf("sparser changed results:\n%s\nvs\n%s", rs.String(), rp.String())
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "20190117" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if m.Parse.Docs.Load() != 1 {
		t.Errorf("sparser parsed %d docs, want 1 (others prefiltered)", m.Parse.Docs.Load())
	}
	if m.PrefilterSkipped.Load() != 30 {
		t.Errorf("prefilter skipped %d, want 30", m.PrefilterSkipped.Load())
	}
	if m.PrefilterBytes.Load() == 0 {
		t.Error("prefilter bytes not metered")
	}
}

func TestSparserNotAppliedToUnsafePredicates(t *testing.T) {
	sp := newTestEngine(t, WithSparser(true))
	// Numeric comparison: prefilter would be unsound under numeric coercion.
	plan, _, err := sp.PlanOnly(`SELECT date FROM mydb.t WHERE get_json_object(sale_logs, '$.turnover') = 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scan.PreFilters) != 0 {
		t.Errorf("numeric equality got a prefilter: %v", plan.Scan.PreFilters)
	}
	// OR disjuncts are not conjuncts.
	plan, _, err = sp.PlanOnly(`
		SELECT date FROM mydb.t
		WHERE get_json_object(sale_logs, '$.item_name') = 'a' OR date = '20190101'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scan.PreFilters) != 0 {
		t.Errorf("OR disjunct got a prefilter: %v", plan.Scan.PreFilters)
	}
	// Literals needing escapes are skipped.
	plan, _, err = sp.PlanOnly(`
		SELECT date FROM mydb.t WHERE get_json_object(sale_logs, '$.item_name') = 'a"b'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scan.PreFilters) != 0 {
		t.Errorf("escaped literal got a prefilter: %v", plan.Scan.PreFilters)
	}
}

func TestSparserEquivalenceOnConjunction(t *testing.T) {
	sql := `SELECT date FROM mydb.t
	        WHERE get_json_object(sale_logs, '$.item_name') = 'item-09'
	          AND date BETWEEN '20190101' AND '20190131'`
	plain := newTestEngine(t)
	sp := newTestEngine(t, WithSparser(true))
	rp := mustQuery(t, plain, sql)
	rsp := mustQuery(t, sp, sql)
	if rp.String() != rsp.String() {
		t.Errorf("conjunction results differ")
	}
}

func TestWildcardPathsInQueries(t *testing.T) {
	clock := simtime.NewSim(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
	fs := dfs.New(dfs.WithClock(clock))
	wh := warehouse.New(fs, warehouse.WithClock(clock))
	wh.CreateDatabase("db")
	schema := orc.Schema{Columns: []orc.Column{{Name: "doc", Type: datum.TypeString}}}
	if err := wh.CreateTable("db", "t", schema); err != nil {
		t.Fatal(err)
	}
	rows := [][]datum.Datum{
		{datum.Str(`{"items":[{"qty":1},{"qty":2}]}`)},
		{datum.Str(`{"items":[{"qty":7}]}`)},
	}
	if _, err := wh.AppendRows("db", "t", rows); err != nil {
		t.Fatal(err)
	}
	for _, backend := range []ParserBackend{JacksonBackend{}, MisonBackend{}, StreamBackend{}} {
		e := NewEngine(wh, WithDefaultDB("db"), WithBackend(backend))
		rs, _, err := e.Query(`SELECT get_json_object(doc, '$.items[*].qty') q FROM db.t`)
		if err != nil {
			t.Fatalf("%s: %v", backend.Name(), err)
		}
		if rs.Rows[0][0].S != "[1,2]" || rs.Rows[1][0].S != "7" {
			t.Errorf("%s rows = %v", backend.Name(), rs.Rows)
		}
	}
}

func TestExplainRendersPlan(t *testing.T) {
	e := newTestEngine(t)
	rs, m, err := e.Query(`EXPLAIN SELECT date FROM mydb.t WHERE date > '20190110' LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	text := rs.String()
	for _, want := range []string{"Limit 5", "Filter", "Scan mydb.t", "sarg"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, text)
		}
	}
	// EXPLAIN must not execute: no bytes read.
	if m.BytesRead.Load() != 0 {
		t.Errorf("EXPLAIN read %d bytes", m.BytesRead.Load())
	}
}
