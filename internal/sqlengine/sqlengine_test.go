package sqlengine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/simtime"
	"repro/internal/warehouse"
)

// newTestEngine builds a warehouse with the paper's Fig 1 sale-logs table:
// 31 days of data across several part files, JSON payloads in sale_logs.
func newTestEngine(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	clock := simtime.NewSim(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
	fs := dfs.New(dfs.WithClock(clock))
	wh := warehouse.New(fs, warehouse.WithClock(clock),
		warehouse.WithWriterOptions(orc.WriterOptions{RowGroupRows: 8}))
	wh.CreateDatabase("mydb")
	schema := orc.Schema{Columns: []orc.Column{
		{Name: "mall_id", Type: datum.TypeString},
		{Name: "date", Type: datum.TypeString},
		{Name: "sale_logs", Type: datum.TypeString},
	}}
	if err := wh.CreateTable("mydb", "t", schema); err != nil {
		t.Fatal(err)
	}
	// 3 part files of 10, 10, 11 days.
	day := 1
	for _, n := range []int{10, 10, 11} {
		var rows [][]datum.Datum
		for i := 0; i < n; i++ {
			date := fmt.Sprintf("201901%02d", day)
			log := fmt.Sprintf(
				`{"item_id":%d,"item_name":"item-%02d","sale_count":%d,"turnover":%d,"price":%d,"nested":{"deep":{"v":%d}}}`,
				day, day, day%7+1, day*10, day%5+1, day*100)
			rows = append(rows, []datum.Datum{
				datum.Str("0001"), datum.Str(date), datum.Str(log),
			})
			day++
		}
		if _, err := wh.AppendRows("mydb", "t", rows); err != nil {
			t.Fatal(err)
		}
		clock.Advance(24 * time.Hour)
	}
	return NewEngine(wh, append([]EngineOption{WithDefaultDB("mydb")}, opts...)...)
}

func mustQuery(t *testing.T, e *Engine, sql string) *ResultSet {
	t.Helper()
	rs, _, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func TestSimpleSelect(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, "SELECT mall_id, date FROM mydb.t LIMIT 3")
	if len(rs.Rows) != 3 || len(rs.Columns) != 2 {
		t.Fatalf("result = %+v", rs)
	}
	if rs.Columns[0] != "mall_id" || rs.Rows[0][1].S != "20190101" {
		t.Errorf("row0 = %v", rs.Rows[0])
	}
}

func TestGetJSONObjectProjection(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.item_name') AS item_name,
		       get_json_object(sale_logs, '$.turnover') AS turnover
		FROM mydb.t
		WHERE date = '20190105'`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Rows[0][0].S != "item-05" || rs.Rows[0][1].S != "50" {
		t.Errorf("row = %v", rs.Rows[0])
	}
}

func TestNestedJSONPath(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.nested.deep.v') v
		FROM mydb.t WHERE date = '20190103'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "300" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestMissingJSONPathIsNull(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.absent') a
		FROM mydb.t WHERE date = '20190101'`)
	if len(rs.Rows) != 1 || !rs.Rows[0][0].Null {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestWhereBetweenAndOrderByLimit(t *testing.T) {
	e := newTestEngine(t)
	// The paper's Fig 1 query shape: 3-day window, top turnover.
	rs := mustQuery(t, e, `
		SELECT mall_id,
		       get_json_object(sale_logs, '$.item_id') AS item_id,
		       get_json_object(sale_logs, '$.turnover') AS turnover
		FROM mydb.t
		WHERE date BETWEEN '20190101' AND '20190103'
		ORDER BY get_json_object(sale_logs, '$.turnover') DESC
		LIMIT 1`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Rows[0][2].S != "30" {
		t.Errorf("top turnover = %v, want 30", rs.Rows[0])
	}
}

func TestOrderByNumericStringsComparesNumerically(t *testing.T) {
	e := newTestEngine(t)
	// turnover values 10..310; lexicographic order would put "100" < "20".
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.turnover') tv
		FROM mydb.t
		ORDER BY cast_double(get_json_object(sale_logs, '$.turnover')) DESC
		LIMIT 2`)
	if rs.Rows[0][0].S != "310" || rs.Rows[1][0].S != "300" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT date d FROM mydb.t ORDER BY d DESC LIMIT 1`)
	if rs.Rows[0][0].S != "20190131" {
		t.Errorf("row = %v", rs.Rows[0])
	}
}

func TestGroupByCount(t *testing.T) {
	e := newTestEngine(t)
	// sale_count = day%7+1, so counts per value bucket are deterministic.
	rs := mustQuery(t, e, `
		SELECT get_json_object(sale_logs, '$.sale_count') sc, COUNT(*) c
		FROM mydb.t
		GROUP BY get_json_object(sale_logs, '$.sale_count')
		ORDER BY sc`)
	if len(rs.Rows) != 7 {
		t.Fatalf("groups = %d, want 7: %v", len(rs.Rows), rs.Rows)
	}
	total := int64(0)
	for _, row := range rs.Rows {
		total += row[1].I
	}
	if total != 31 {
		t.Errorf("counts sum to %d, want 31", total)
	}
}

func TestAggregatesSumMinMaxAvg(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT COUNT(*) c,
		       SUM(cast_double(get_json_object(sale_logs, '$.turnover'))) s,
		       MIN(date) lo,
		       MAX(date) hi,
		       AVG(cast_double(get_json_object(sale_logs, '$.price'))) a
		FROM mydb.t`)
	row := rs.Rows[0]
	if row[0].I != 31 {
		t.Errorf("count = %v", row[0])
	}
	// sum of day*10 for 1..31 = 4960.
	if row[1].F != 4960 {
		t.Errorf("sum = %v", row[1])
	}
	if row[2].S != "20190101" || row[3].S != "20190131" {
		t.Errorf("min/max = %v %v", row[2], row[3])
	}
	if row[4].F <= 0 {
		t.Errorf("avg = %v", row[4])
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT COUNT(*) c FROM mydb.t WHERE date = '20250101'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 0 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestSelfJoin(t *testing.T) {
	e := newTestEngine(t)
	// Self-equijoin on date: each row matches itself only (dates unique).
	rs := mustQuery(t, e, `
		SELECT COUNT(*) c
		FROM mydb.t a JOIN mydb.t b ON a.date = b.date`)
	if rs.Rows[0][0].I != 31 {
		t.Errorf("join count = %v, want 31", rs.Rows[0][0])
	}
}

func TestJoinProjectionBothSides(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT a.date, get_json_object(b.sale_logs, '$.item_id') id
		FROM mydb.t a JOIN mydb.t b ON a.date = b.date
		WHERE a.date = '20190102'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "20190102" || rs.Rows[0][1].S != "2" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestJSONPredicateInWhere(t *testing.T) {
	e := newTestEngine(t)
	// The Fig 8 shape: predicate on a JSON path compared numerically.
	rs := mustQuery(t, e, `
		SELECT date FROM mydb.t
		WHERE get_json_object(sale_logs, '$.turnover') > 290
		ORDER BY date`)
	if len(rs.Rows) != 2 { // turnover 300, 310
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[0][0].S != "20190130" {
		t.Errorf("first = %v", rs.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT DISTINCT mall_id FROM mydb.t`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "0001" {
		t.Errorf("rows = %v", rs.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `SELECT * FROM mydb.t LIMIT 1`)
	if len(rs.Columns) != 3 {
		t.Errorf("columns = %v", rs.Columns)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT cast_bigint(get_json_object(sale_logs, '$.turnover')) * 2 + 1 AS v,
		       upper(get_json_object(sale_logs, '$.item_name')) AS u,
		       length(date) AS l
		FROM mydb.t WHERE date = '20190104'`)
	row := rs.Rows[0]
	if row[0].I != 81 {
		t.Errorf("v = %v", row[0])
	}
	if row[1].S != "ITEM-04" {
		t.Errorf("u = %v", row[1])
	}
	if row[2].I != 8 {
		t.Errorf("l = %v", row[2])
	}
}

func TestIsNullOperators(t *testing.T) {
	e := newTestEngine(t)
	rs := mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t
		WHERE get_json_object(sale_logs, '$.absent') IS NULL`)
	if rs.Rows[0][0].I != 31 {
		t.Errorf("IS NULL count = %v", rs.Rows[0][0])
	}
	rs = mustQuery(t, e, `
		SELECT COUNT(*) c FROM mydb.t
		WHERE get_json_object(sale_logs, '$.turnover') IS NOT NULL`)
	if rs.Rows[0][0].I != 31 {
		t.Errorf("IS NOT NULL count = %v", rs.Rows[0][0])
	}
}

func TestSARGPushdownSkipsRowGroups(t *testing.T) {
	e := newTestEngine(t)
	_, m, err := e.Query(`SELECT date FROM mydb.t WHERE date = '20190131'`)
	if err != nil {
		t.Fatal(err)
	}
	if m.RowGroupsSkipped.Load() == 0 {
		t.Error("expected row groups skipped via date SARG")
	}
}

func TestMetricsPhases(t *testing.T) {
	e := newTestEngine(t)
	_, m, err := e.Query(`
		SELECT get_json_object(sale_logs, '$.item_id') FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.Parse.Snapshot()
	if pc.Docs != 31 || pc.Calls != 31 {
		t.Errorf("parse counts = %+v", pc)
	}
	if m.BytesRead.Load() == 0 || m.RowOps.Load() == 0 {
		t.Errorf("metrics = read %d, rowops %d", m.BytesRead.Load(), m.RowOps.Load())
	}
	bd := m.Breakdown(e.CostModel())
	if bd.Parse <= 0 || bd.Read <= 0 || bd.Compute <= 0 {
		t.Errorf("breakdown = %+v", bd)
	}
	if m.SimulatedTime(e.CostModel()) != bd.Total() {
		t.Error("SimulatedTime != breakdown total")
	}
}

func TestJacksonMemoizesDocPerRow(t *testing.T) {
	e := newTestEngine(t)
	// Two paths on the same doc: one parse per row, two calls per row.
	_, m, err := e.Query(`
		SELECT get_json_object(sale_logs, '$.item_id') a,
		       get_json_object(sale_logs, '$.item_name') b
		FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.Parse.Snapshot()
	if pc.Docs != 31 {
		t.Errorf("docs parsed = %d, want 31 (memoized)", pc.Docs)
	}
	if pc.Calls != 62 {
		t.Errorf("calls = %d, want 62", pc.Calls)
	}
}

func TestMisonBackendMatchesJackson(t *testing.T) {
	sql := `
		SELECT get_json_object(sale_logs, '$.item_name') n,
		       get_json_object(sale_logs, '$.nested.deep.v') v
		FROM mydb.t
		WHERE get_json_object(sale_logs, '$.turnover') > 100
		ORDER BY n`
	ej := newTestEngine(t)
	em := newTestEngine(t, WithBackend(MisonBackend{}))
	rj := mustQuery(t, ej, sql)
	rm := mustQuery(t, em, sql)
	if len(rj.Rows) != len(rm.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(rj.Rows), len(rm.Rows))
	}
	for i := range rj.Rows {
		for c := range rj.Rows[i] {
			if rj.Rows[i][c].AsString() != rm.Rows[i][c].AsString() {
				t.Errorf("row %d col %d: jackson %q vs mison %q",
					i, c, rj.Rows[i][c].AsString(), rm.Rows[i][c].AsString())
			}
		}
	}
}

func TestStreamBackendMatchesJackson(t *testing.T) {
	// Mixed query: two member-step paths plus a wildcard, all streamed by
	// the same single-pass evaluator (wildcards compile into
	// array-iteration trie nodes).
	sql := `
		SELECT get_json_object(sale_logs, '$.item_name') n,
		       get_json_object(sale_logs, '$.nested.deep.v') v,
		       get_json_object(sale_logs, '$.basket[*].sku') s
		FROM mydb.t
		WHERE get_json_object(sale_logs, '$.turnover') > 100
		ORDER BY n`
	ej := newTestEngine(t)
	es := newTestEngine(t, WithBackend(StreamBackend{}))
	rj := mustQuery(t, ej, sql)
	rs := mustQuery(t, es, sql)
	if rj.String() != rs.String() {
		t.Fatalf("results differ:\njackson:\n%s\nondemand:\n%s", rj.String(), rs.String())
	}
}

func TestStreamBackendMetersSkippedBytes(t *testing.T) {
	e := newTestEngine(t, WithBackend(StreamBackend{}))
	_, m, err := e.Query(`
		SELECT get_json_object(sale_logs, '$.item_id') a FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	if !m.StreamParser {
		t.Error("StreamParser flag not set for ondemand backend")
	}
	pc := m.Parse.Snapshot()
	if pc.Skipped <= 0 {
		t.Errorf("Parse.Skipped = %d, want > 0 (early exit should skip bytes)", pc.Skipped)
	}
	if pc.Bytes <= 0 {
		t.Errorf("Parse.Bytes = %d, want > 0", pc.Bytes)
	}
	// Streaming parse cost must be charged on scanned bytes at the stream
	// rate: strictly cheaper than tree-parsing every byte.
	cm := DefaultCostModel()
	treeCost := float64(pc.Bytes+pc.Skipped) * cm.ParseNsPerByteTree
	streamCost := float64(pc.Bytes) * cm.ParseNsPerByteStream
	if streamCost >= treeCost {
		t.Errorf("stream parse cost %.0f >= tree cost %.0f", streamCost, treeCost)
	}
}

func TestStreamBackendTreeFallbackMetered(t *testing.T) {
	e := newTestEngine(t, WithBackend(StreamBackend{}))

	// Wildcard paths stream: no tree fallback.
	_, m, err := e.Query(`SELECT get_json_object(sale_logs, '$.basket[*].sku') s FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	if fb := m.Parse.Snapshot().TreeFallback; fb != 0 {
		t.Errorf("wildcard query tree fallbacks = %d, want 0 (wildcards stream)", fb)
	}

	// A root path is the one projection left on the tree-parse lane; the
	// fallback must be metered per document, not silent.
	out, _, m, err := e.ExplainAnalyze(`SELECT get_json_object(sale_logs, '$') d FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	pc := m.Parse.Snapshot()
	if pc.TreeFallback != pc.Docs || pc.TreeFallback == 0 {
		t.Errorf("root query tree fallbacks = %d, want %d (one per document)", pc.TreeFallback, pc.Docs)
	}
	if !strings.Contains(out, "parse-tree-fallback=") {
		t.Errorf("EXPLAIN ANALYZE missing parse-tree-fallback attr:\n%s", out)
	}
	if !strings.Contains(m.String(), "tree-fallback") {
		t.Errorf("Metrics.String() missing tree-fallback: %s", m.String())
	}
}

func TestJSONPathsCollection(t *testing.T) {
	stmt, err := Parse(`
		SELECT get_json_object(a, '$.x') FROM db.t
		WHERE get_json_object(a, '$.y') > 1
		GROUP BY get_json_object(a, '$.x')
		ORDER BY get_json_object(a, '$.z')`)
	if err != nil {
		t.Fatal(err)
	}
	paths := stmt.JSONPaths()
	if len(paths) != 4 {
		t.Fatalf("paths = %d, want 4", len(paths))
	}
	want := []string{"$.x", "$.y", "$.x", "$.z"}
	for i, p := range paths {
		if p.Path.String() != want[i] {
			t.Errorf("path %d = %s, want %s", i, p.Path.String(), want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELECT", "SELECT FROM t", "SELECT a FROM", "SELECT a t", // trailing ident consumed as alias then FROM missing
		"SELECT a FROM db.t WHERE", "SELECT a FROM t GROUP", "SELECT a FROM t LIMIT x",
		"SELECT get_json_object(a) FROM t", "SELECT get_json_object(a, 2) FROM t",
		"SELECT get_json_object(a, 'bad path') FROM t",
		"SELECT count(a, b) FROM t", "SELECT a FROM t ORDER", "SELECT 'unterminated FROM t",
		"SELECT a FROM t JOIN u ON a.x > u.y", "SELECT a FROM t extra garbage here",
	}
	e := newTestEngine(t)
	for _, sql := range bad {
		if _, _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded, want error", sql)
		}
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	e := newTestEngine(t)
	if _, _, err := e.Query("SELECT a FROM mydb.nope"); err == nil {
		t.Error("unknown table should error")
	}
	if _, _, err := e.Query("SELECT no_col FROM mydb.t"); err == nil {
		t.Error("unknown column should error")
	}
	if _, _, err := e.Query("SELECT date FROM mydb.t GROUP BY mall_id"); err == nil {
		t.Error("non-grouped column in projection should error")
	}
}

func TestPlanOutline(t *testing.T) {
	e := newTestEngine(t)
	plan, _, err := e.PlanOnly(`
		SELECT get_json_object(sale_logs, '$.item_id') i
		FROM mydb.t WHERE date > '20190110' ORDER BY i LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"Limit 5", "Sort", "Filter", "Scan mydb.t", "sarg=(date > 20190110)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan outline missing %q:\n%s", want, out)
		}
	}
}

func TestColumnPruning(t *testing.T) {
	e := newTestEngine(t)
	plan, _, err := e.PlanOnly(`SELECT date FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Scan.Columns) != 1 || plan.Scan.Columns[0] != "date" {
		t.Errorf("scan columns = %v, want [date]", plan.Scan.Columns)
	}
}

func TestPlanNodesCounted(t *testing.T) {
	e := newTestEngine(t)
	_, m, err := e.PlanOnly(`SELECT get_json_object(sale_logs, '$.a') FROM mydb.t`)
	if err != nil {
		t.Fatal(err)
	}
	if m.PlanExprNodes == 0 {
		t.Error("PlanExprNodes not counted")
	}
}

func TestDeterministicResultOrderWithoutSort(t *testing.T) {
	e := newTestEngine(t)
	first := mustQuery(t, e, `SELECT date FROM mydb.t`).String()
	for i := 0; i < 5; i++ {
		if got := mustQuery(t, e, `SELECT date FROM mydb.t`).String(); got != first {
			t.Fatal("result order varies across runs without ORDER BY")
		}
	}
}
