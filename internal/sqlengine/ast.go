package sqlengine

import (
	"strings"

	"repro/internal/datum"
	"repro/internal/jsonpath"
)

// ---- Expression AST ----

// Expr is any scalar expression.
type Expr interface {
	// String renders the expression as SQL-ish text for diagnostics.
	String() string
	// walk visits this node then its children.
	walk(func(Expr))
}

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Qualifier string // table name or alias; "" if unqualified
	Name      string
	// index is resolved at bind time.
	index int
}

func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}
func (c *ColumnRef) walk(f func(Expr)) { f(c) }

// Literal is a constant value.
type Literal struct {
	Value datum.Datum
}

func (l *Literal) String() string {
	if l.Value.Typ == datum.TypeString && !l.Value.Null {
		return "'" + l.Value.S + "'"
	}
	return l.Value.AsString()
}
func (l *Literal) walk(f func(Expr)) { f(l) }

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpText = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// Binary is a binary operation.
type Binary struct {
	Op          BinaryOp
	Left, Right Expr
}

func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + binOpText[b.Op] + " " + b.Right.String() + ")"
}
func (b *Binary) walk(f func(Expr)) { f(b); b.Left.walk(f); b.Right.walk(f) }

// Not is logical negation.
type Not struct{ Inner Expr }

func (n *Not) String() string    { return "NOT " + n.Inner.String() }
func (n *Not) walk(f func(Expr)) { f(n); n.Inner.walk(f) }

// IsNull tests SQL NULL-ness (IS NULL / IS NOT NULL).
type IsNull struct {
	Inner  Expr
	Negate bool
}

func (e *IsNull) String() string {
	if e.Negate {
		return e.Inner.String() + " IS NOT NULL"
	}
	return e.Inner.String() + " IS NULL"
}
func (e *IsNull) walk(f func(Expr)) { f(e); e.Inner.walk(f) }

// Like is a SQL LIKE match against a literal pattern ('%' matches any run,
// '_' matches one character).
type Like struct {
	Inner   Expr
	Pattern string
}

func (l *Like) String() string    { return l.Inner.String() + " LIKE '" + l.Pattern + "'" }
func (l *Like) walk(f func(Expr)) { f(l); l.Inner.walk(f) }

// JSONPathExpr is the get_json_object(column, 'path') UDF — the expression
// Maxson's plan modifier pattern-matches and replaces with placeholders.
type JSONPathExpr struct {
	Column *ColumnRef
	Path   *jsonpath.Path
}

func (j *JSONPathExpr) String() string {
	return "get_json_object(" + j.Column.String() + ", '" + j.Path.String() + "')"
}
func (j *JSONPathExpr) walk(f func(Expr)) { f(j); j.Column.walk(f) }

// CachePlaceholder replaces a JSONPathExpr after a cache hit. It carries the
// cached column's name in the combined scan output plus a description of
// what it stands for (column id + path), per Algorithm 1 lines 22-23.
type CachePlaceholder struct {
	// OutputName is the column name in the scan output rows.
	OutputName string
	// SourceColumn and Path describe the replaced expression.
	SourceColumn string
	Path         *jsonpath.Path
	index        int
}

func (c *CachePlaceholder) String() string {
	return "cache[" + c.SourceColumn + ", '" + c.Path.String() + "']"
}
func (c *CachePlaceholder) walk(f func(Expr)) { f(c) }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregates.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggText = map[AggFunc]string{
	AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG",
}

// Aggregate is an aggregate call. Arg is nil for COUNT(*).
type Aggregate struct {
	Func AggFunc
	Arg  Expr
	// aggIndex is resolved at bind time in post-aggregation expressions.
	aggIndex int
}

func (a *Aggregate) String() string {
	if a.Arg == nil {
		return aggText[a.Func] + "(*)"
	}
	return aggText[a.Func] + "(" + a.Arg.String() + ")"
}
func (a *Aggregate) walk(f func(Expr)) {
	f(a)
	if a.Arg != nil {
		a.Arg.walk(f)
	}
}

// FuncCall is a scalar function call (non-aggregate, non-get_json_object).
type FuncCall struct {
	Name string // lowercase
	Args []Expr
}

func (fc *FuncCall) String() string {
	parts := make([]string, len(fc.Args))
	for i, a := range fc.Args {
		parts[i] = a.String()
	}
	return fc.Name + "(" + strings.Join(parts, ", ") + ")"
}
func (fc *FuncCall) walk(f func(Expr)) {
	f(fc)
	for _, a := range fc.Args {
		a.walk(f)
	}
}

// Walk visits every node of the expression tree.
func Walk(e Expr, f func(Expr)) {
	if e != nil {
		e.walk(f)
	}
}

// keyRef is a bound reference into an intermediate row (group key or sort
// input), produced by plan-time rewrites. It renders as the text it
// replaced so plan output stays readable.
type keyRef struct {
	name  string
	index int
}

func (k *keyRef) String() string    { return k.name }
func (k *keyRef) walk(f func(Expr)) { f(k) }

// Rewrite rebuilds an expression bottom-up, applying f to every node after
// its children have been rewritten. It does not descend into Aggregate
// arguments (those bind against the pre-aggregation schema) nor into
// JSONPathExpr internals.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *Binary:
		n.Left = Rewrite(n.Left, f)
		n.Right = Rewrite(n.Right, f)
	case *Not:
		n.Inner = Rewrite(n.Inner, f)
	case *IsNull:
		n.Inner = Rewrite(n.Inner, f)
	case *Like:
		n.Inner = Rewrite(n.Inner, f)
	case *FuncCall:
		for i := range n.Args {
			n.Args[i] = Rewrite(n.Args[i], f)
		}
	}
	return f(e)
}

// ---- Statement AST ----

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// OutputName returns the column name this item produces.
func (s SelectItem) OutputName() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Expr.String()
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	DB    string
	Table string
	Alias string
}

// Binding returns the name other clauses refer to this table by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an inner equi-join against a second table.
type JoinClause struct {
	Right TableRef
	On    Expr // must reduce to conjunction of equality comparisons
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	// Explain renders the physical plan instead of executing.
	Explain  bool
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Join     *JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// JSONPaths returns every get_json_object occurrence in the statement, in
// syntactic order. The JSONPath Collector consumes this.
func (s *SelectStmt) JSONPaths() []*JSONPathExpr {
	var out []*JSONPathExpr
	visit := func(e Expr) {
		Walk(e, func(n Expr) {
			if j, ok := n.(*JSONPathExpr); ok {
				out = append(out, j)
			}
		})
	}
	for _, it := range s.Items {
		if !it.Star {
			visit(it.Expr)
		}
	}
	if s.Where != nil {
		visit(s.Where)
	}
	for _, g := range s.GroupBy {
		visit(g)
	}
	if s.Having != nil {
		visit(s.Having)
	}
	for _, o := range s.OrderBy {
		visit(o.Expr)
	}
	if s.Join != nil && s.Join.On != nil {
		visit(s.Join.On)
	}
	return out
}
