package sqlengine

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/orc"
)

// RowSource streams rows of one partition (split). Next returns nil at end.
type RowSource interface {
	Next() ([]datum.Datum, error)
}

// ScanSourceFactory opens one split of a scan. Maxson substitutes its
// combined (primary + cache) reader by replacing a ScanNode's Factory.
type ScanSourceFactory interface {
	// NumSplits returns the partition count.
	NumSplits() (int, error)
	// Open opens split i. The returned schema must be identical across
	// splits.
	Open(split int, m *Metrics) (RowSource, error)
	// Schema returns the output schema.
	Schema() (RowSchema, error)
}

// RawPrefilter is a Sparser-style raw-byte filter: before parsing a JSON
// document, check that it contains the needle substring at all. Sound only
// for top-level AND conjuncts of the form get_json_object(col, p) = 'lit'
// where the literal contains no JSON-escaped characters — then a matching
// row's document must contain the quoted literal verbatim, so rows without
// it can skip the parse entirely (Palkar et al., VLDB 2018).
type RawPrefilter struct {
	Column string
	Needle string
	colIdx int
}

// ScanNode reads a base table. Columns lists the storage columns to read;
// SARG is an optional storage-level predicate for row-group skipping.
type ScanNode struct {
	DB      string
	Table   string
	Binding string // alias used to qualify output columns
	Columns []string
	SARG    *orc.SARG
	// PreFilters hold Sparser-style raw-byte filters (engine option).
	PreFilters []RawPrefilter
	// Factory overrides the default warehouse file reader (set by Maxson's
	// plan modifier). When nil, the engine builds a default factory.
	Factory ScanSourceFactory
	// schema is filled at plan time.
	schema RowSchema
}

// Schema returns the scan's output schema.
func (s *ScanNode) Schema() RowSchema { return s.schema }

// SetSchema installs the output schema (used by plan modifiers that change
// the scan's output shape).
func (s *ScanNode) SetSchema(schema RowSchema) { s.schema = schema }

// PhysicalPlan is the executable form of one SELECT. The executor runs the
// scan (and join build) partitions in parallel, then the serial tail.
type PhysicalPlan struct {
	Scan *ScanNode

	// Join, when non-nil, hash-joins Scan (probe side) with Build.
	Join *JoinNode

	// Filter is the bound WHERE predicate over the combined input schema
	// (after join, before aggregation); nil when absent.
	Filter Expr

	// GroupBy keys and extracted aggregates; empty GroupBy with non-empty
	// Aggs is a global aggregation.
	GroupBy []Expr
	Aggs    []*Aggregate

	// Having filters groups post-aggregation (bound against the
	// [group keys..., agg values...] intermediate row).
	Having Expr

	// Items are the output projections. In aggregate plans they are bound
	// against [group keys..., agg values...]; otherwise against the input
	// schema.
	Items []SelectItem

	// OrderBy/Limit/Distinct are applied last, in that order (Distinct is
	// applied before Sort, matching SparkSQL).
	OrderBy  []OrderItem
	Limit    int
	Distinct bool

	// InputSchema is the schema filters and projections are bound against
	// (scan schema, or joined schema).
	InputSchema RowSchema
	// OutputSchema names the result columns.
	OutputSchema RowSchema

	// aggregate indicates the aggregation path is active.
	aggregate bool
}

// JoinNode describes a hash equi-join.
type JoinNode struct {
	Build *ScanNode // right side, materialized into a hash table
	// LeftKeys/RightKeys are bound key expressions; LeftKeys bind against
	// the probe scan schema, RightKeys against the build scan schema.
	LeftKeys  []Expr
	RightKeys []Expr
}

// String renders a plan outline for diagnostics and the Fig 9-style
// plan-comparison output.
func (p *PhysicalPlan) String() string {
	out := ""
	if p.Limit >= 0 {
		out += fmt.Sprintf("Limit %d\n", p.Limit)
	}
	for _, o := range p.OrderBy {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		out += fmt.Sprintf("Sort %s %s\n", o.Expr.String(), dir)
	}
	if p.Distinct {
		out += "Distinct\n"
	}
	if p.Having != nil {
		out += "Having " + p.Having.String() + "\n"
	}
	if p.aggregate {
		out += "Aggregate ["
		for i, g := range p.GroupBy {
			if i > 0 {
				out += ", "
			}
			out += g.String()
		}
		out += "] aggs=["
		for i, a := range p.Aggs {
			if i > 0 {
				out += ", "
			}
			out += a.String()
		}
		out += "]\n"
	}
	out += "Project ["
	for i, it := range p.Items {
		if i > 0 {
			out += ", "
		}
		if it.Star {
			out += "*"
		} else {
			out += it.OutputName()
		}
	}
	out += "]\n"
	if p.Filter != nil {
		out += "Filter " + p.Filter.String() + "\n"
	}
	if p.Join != nil {
		out += fmt.Sprintf("HashJoin build=%s.%s\n", p.Join.Build.DB, p.Join.Build.Table)
	}
	out += fmt.Sprintf("Scan %s.%s cols=%v", p.Scan.DB, p.Scan.Table, p.Scan.Columns)
	if p.Scan.SARG != nil {
		out += " sarg=(" + p.Scan.SARG.String() + ")"
	}
	if len(p.Scan.PreFilters) > 0 {
		out += " prefilters=["
		for i, pf := range p.Scan.PreFilters {
			if i > 0 {
				out += ", "
			}
			out += pf.Column + "~" + pf.Needle
		}
		out += "]"
	}
	if p.Scan.Factory != nil {
		out += " source=custom"
	}
	return out
}
