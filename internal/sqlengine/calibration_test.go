package sqlengine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/jsonpath"
)

// TestCostModelCalibrationShape validates the cost model's central
// assumption against the real substrates on this machine: tree parsing must
// be meaningfully slower per byte than structural-index projection, which
// in turn must be slower than a raw substring prefilter. The test asserts
// the ordering (which every experiment's conclusions rest on), not absolute
// rates (hardware varies); the measured rates are logged so the constants
// in cost.go can be re-calibrated when porting.
func TestCostModelCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing skipped in -short mode")
	}
	// A realistic mid-size document.
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < 24; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`"field_`)
		sb.WriteByte(byte('a' + i%26))
		sb.WriteByte(byte('0' + i/26))
		sb.WriteString(`":"`)
		sb.WriteString(strings.Repeat("v", 20))
		sb.WriteString(`"`)
	}
	sb.WriteString(`,"target":"needle-value"}`)
	doc := sb.String()
	path := jsonpath.MustCompile("$.target")
	const iters = 3000

	var meter ParseMeter
	timePer := func(eval DocEvaluator, uniquePrefix bool) float64 {
		docs := make([]string, iters)
		for i := range docs {
			if uniquePrefix {
				// Defeat the per-document memo so every call does real work.
				docs[i] = `{"i":` + itoa(i) + `,` + doc[1:]
			} else {
				docs[i] = doc
			}
		}
		start := time.Now()
		for _, d := range docs {
			if _, ok := eval.Extract(d, path); !ok {
				t.Fatal("extraction failed")
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters*len(doc))
	}

	jacksonNs := timePer(JacksonBackend{}.NewDocEvaluator(&meter), true)
	misonNs := timePer(MisonBackend{}.NewDocEvaluator(&meter), true)

	// Raw substring scan (the prefilter primitive).
	start := time.Now()
	hits := 0
	for i := 0; i < iters; i++ {
		if strings.Contains(doc, `"needle-value"`) {
			hits++
		}
	}
	prefilterNs := float64(time.Since(start).Nanoseconds()) / float64(iters*len(doc))
	if hits != iters {
		t.Fatal("prefilter needle missing")
	}

	t.Logf("measured ns/byte: tree=%.2f index=%.2f prefilter=%.3f (model: %.1f / %.1f / %.1f)",
		jacksonNs, misonNs, prefilterNs,
		DefaultCostModel().ParseNsPerByteTree,
		DefaultCostModel().ParseNsPerByteIndex,
		DefaultCostModel().PrefilterNsPerByte)

	if jacksonNs <= misonNs {
		t.Errorf("tree parse (%.2f ns/B) should cost more than index projection (%.2f ns/B)", jacksonNs, misonNs)
	}
	if misonNs <= prefilterNs {
		t.Errorf("index projection (%.2f ns/B) should cost more than raw prefilter (%.3f ns/B)", misonNs, prefilterNs)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
