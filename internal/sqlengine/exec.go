package sqlengine

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/orc"
)

// ResultSet is the output of one query execution.
type ResultSet struct {
	Columns []string
	Rows    [][]datum.Datum
}

// String renders the result as an aligned text table (tools and examples).
func (rs *ResultSet) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(rs.Columns, "\t"))
	sb.WriteByte('\n')
	for _, row := range rs.Rows {
		for i, d := range row {
			if i > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(d.AsString())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// tableSource is the default ScanSourceFactory: it reads one warehouse part
// file per split.
type tableSource struct {
	e    *Engine
	scan *ScanNode
}

// NumSplits implements ScanSourceFactory.
func (ts *tableSource) NumSplits() (int, error) {
	info, err := ts.e.wh.Table(ts.scan.DB, ts.scan.Table)
	if err != nil {
		return 0, err
	}
	return len(info.Files), nil
}

// Schema implements ScanSourceFactory.
func (ts *tableSource) Schema() (RowSchema, error) { return ts.scan.schema, nil }

// Open implements ScanSourceFactory.
func (ts *tableSource) Open(split int, m *Metrics) (RowSource, error) {
	info, err := ts.e.wh.Table(ts.scan.DB, ts.scan.Table)
	if err != nil {
		return nil, err
	}
	if split < 0 || split >= len(info.Files) {
		return nil, fmt.Errorf("sql: split %d out of range for %s.%s", split, ts.scan.DB, ts.scan.Table)
	}
	r, err := ts.e.wh.OpenFile(info.Files[split])
	if err != nil {
		return nil, err
	}
	var rs orc.ReadStats
	cur, err := r.NewCursor(ts.scan.Columns, ts.scan.SARG, &rs)
	if err != nil {
		return nil, err
	}
	if m != nil {
		m.MarkScanMode(ScanRaw)
		if m.Span != nil {
			m.Span.Set("source", "raw")
		}
	}
	return &fileRowSource{cur: cur, rs: &rs, m: m}, nil
}

type fileRowSource struct {
	cur *orc.Cursor
	rs  *orc.ReadStats
	m   *Metrics
	// prev snapshots let the source stream stat deltas into Metrics.
	prev orc.ReadStats
}

func (s *fileRowSource) Next() ([]datum.Datum, error) {
	row, err := s.cur.Next()
	s.flushStats()
	return row, err
}

// NextBatch implements BatchSource: the cursor copies decoded row-group
// columns straight into the batch vectors, and read-stat deltas flush once
// per batch instead of once per row.
func (s *fileRowSource) NextBatch(b *RowBatch) (int, error) {
	n, err := s.cur.NextBatch(b.Cols, b.Capacity())
	s.flushStats()
	return n, err
}

// flushStats streams the cursor's stat deltas into the query Metrics.
func (s *fileRowSource) flushStats() {
	if s.m == nil {
		return
	}
	cur := *s.rs
	s.m.BytesRead.Add(cur.BytesRead - s.prev.BytesRead)
	s.m.RowsScanned.Add(cur.RowsRead - s.prev.RowsRead)
	s.m.RowGroupsRead.Add(cur.RowGroupsRead - s.prev.RowGroupsRead)
	s.m.RowGroupsSkipped.Add(cur.RowGroupsSkipped - s.prev.RowGroupsSkipped)
	s.prev = cur
}

// Execute runs a physical plan and returns its results plus metrics.
func (e *Engine) Execute(plan *PhysicalPlan) (*ResultSet, *Metrics, error) {
	return e.ExecuteCtx(context.Background(), plan)
}

// ExecuteCtx runs a physical plan under a context; cancellation is honored
// at batch boundaries, and the engine query timeout bounds the run just as
// it does for QueryCtx (queryStmt applies it on the query path; direct
// plan execution gets the same ceiling here).
func (e *Engine) ExecuteCtx(ctx context.Context, plan *PhysicalPlan) (*ResultSet, *Metrics, error) {
	if e.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.queryTimeout)
		defer cancel()
	}
	return e.execute(ctx, plan, nil)
}

// execute runs a physical plan; when trace is non-nil each operator and
// scan partition records a span under it.
func (e *Engine) execute(ctx context.Context, plan *PhysicalPlan, trace *obs.Span) (*ResultSet, *Metrics, error) {
	m := &Metrics{
		TreeParser:   e.backend.Name() == "jackson",
		StreamParser: e.backend.Name() == "ondemand",
		Trace:        trace,
		Span:         trace,
	}
	start := e.nowWall()

	// Hash-join build side (if any), materialized once.
	var joinTable map[string][][]datum.Datum
	var buildWidth int
	if plan.Join != nil {
		bm := &Metrics{}
		if trace != nil {
			bm.Span = trace.Child(fmt.Sprintf("join-build %s.%s", plan.Join.Build.DB, plan.Join.Build.Table))
		}
		var err error
		joinTable, buildWidth, err = e.buildJoinTable(ctx, plan, bm)
		if bm.Span != nil {
			bm.Span.End()
			bm.Span.SetInt("rows", bm.RowsScanned.Load())
			bm.Span.SetInt("bytes", bm.BytesRead.Load())
			bm.Span.SetInt("parse-docs", bm.Parse.Docs.Load())
		}
		bm.addTo(m)
		if err != nil {
			return nil, nil, err
		}
	}

	factory := plan.Scan.Factory
	if factory == nil {
		factory = &tableSource{e: e, scan: plan.Scan}
	}
	nSplits, err := factory.NumSplits()
	if err != nil {
		return nil, nil, err
	}

	// Per-partition metrics roll up into the query totals after the fan-out;
	// split spans are pre-created in split order so the tree is
	// deterministic even though partitions run concurrently.
	results := make([]partResult, nSplits)
	partMetrics := make([]*Metrics, nSplits)
	var scanSpan *obs.Span
	if trace != nil {
		scanSpan = trace.Child(fmt.Sprintf("scan %s.%s", plan.Scan.DB, plan.Scan.Table))
	}
	for split := 0; split < nSplits; split++ {
		pm := &Metrics{}
		if scanSpan != nil {
			pm.Span = scanSpan.Child(fmt.Sprintf("split %d", split))
		}
		partMetrics[split] = pm
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.parallelism)
	for split := 0; split < nSplits; split++ {
		wg.Add(1)
		go func(split int) {
			defer wg.Done()
			// A panicking worker (corrupt data, injected fault, executor bug)
			// must fail the query, not the process. runPartition's own defers
			// run before this recover, so the pooled batch is still returned.
			defer func() {
				if r := recover(); r != nil {
					if e.obsC != nil {
						e.obsC.splitPanics.Inc()
					}
					results[split] = partResult{err: fmt.Errorf(
						"sql: split %d of %s.%s panicked: %v", split, plan.Scan.DB, plan.Scan.Table, r)}
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[split] = e.runPartition(ctx, plan, factory, split, joinTable, buildWidth, partMetrics[split])
		}(split)
	}
	wg.Wait()
	if scanSpan != nil {
		scanSpan.End()
	}

	// Fold the per-split work into the query totals and annotate each
	// split's span with what it actually did.
	sm := &Metrics{TreeParser: m.TreeParser, StreamParser: m.StreamParser} // scan-level totals
	var mapOut int64
	for split, pm := range results {
		p := partMetrics[split]
		if p.Span != nil {
			p.Span.SetInt("rows", p.RowsScanned.Load())
			p.Span.SetInt("out", pm.rowsOut)
			p.Span.SetInt("bytes", p.BytesRead.Load())
			p.Span.SetInt("parse-docs", p.Parse.Docs.Load())
			if n := p.CacheValuesRead.Load(); n > 0 {
				p.Span.SetInt("cache-values", n)
			}
			if n := p.RowGroupsSkipped.Load(); n > 0 {
				p.Span.SetInt("rowgroups-skipped", n)
			}
		}
		p.addTo(sm)
		mapOut += pm.rowsOut
	}
	if scanSpan != nil {
		scanSpan.SetInt("splits", int64(nSplits))
		scanSpan.SetInt("rows", sm.RowsScanned.Load())
		scanSpan.SetInt("out", mapOut)
		scanSpan.SetInt("bytes", sm.BytesRead.Load())
		pc := sm.Parse.Snapshot()
		scanSpan.SetInt("parse-docs", pc.Docs)
		scanSpan.SetInt("parse-bytes", pc.Bytes)
		if pc.Skipped > 0 {
			scanSpan.SetInt("parse-bytes-skipped", pc.Skipped)
		}
		if pc.TreeFallback > 0 {
			scanSpan.SetInt("parse-tree-fallback", pc.TreeFallback)
		}
		scanSpan.SetInt("parse-calls", pc.Calls)
		scanSpan.SetInt("rowgroups", sm.RowGroupsRead.Load())
		scanSpan.SetInt("rowgroups-skipped", sm.RowGroupsSkipped.Load())
		if n := sm.PrefilterSkipped.Load(); n > 0 {
			scanSpan.SetInt("prefilter-skipped", n)
		}
		if n := sm.CacheValuesRead.Load(); n > 0 {
			scanSpan.SetInt("cache-values", n)
		}
		scanSpan.Set("simulated", sm.Breakdown(e.cost).String())
	}
	sm.addTo(m)
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
	}

	var out [][]datum.Datum
	var sortKeys [][]datum.Datum
	if plan.aggregate {
		opsBefore := m.RowOps.Load()
		aggStart := time.Now()
		out, err = e.finalizeAggregate(plan, results, m)
		if err != nil {
			return nil, nil, err
		}
		if trace != nil {
			span := trace.Child("aggregate")
			span.SetWindow(aggStart, time.Now())
			span.SetInt("groups", int64(len(out)))
			span.SetInt("row-ops", m.RowOps.Load()-opsBefore)
		}
		sortKeys = nil // agg sort keys are computed from post rows below
	} else {
		for _, r := range results {
			out = append(out, r.rows...)
			sortKeys = append(sortKeys, r.keys...)
		}
	}

	if plan.Distinct {
		opsBefore := m.RowOps.Load()
		distinctStart := time.Now()
		out, sortKeys = distinctRows(out, sortKeys, m)
		if trace != nil {
			span := trace.Child("distinct")
			span.SetWindow(distinctStart, time.Now())
			span.SetInt("out", int64(len(out)))
			span.SetInt("row-ops", m.RowOps.Load()-opsBefore)
		}
	}
	if len(plan.OrderBy) > 0 {
		opsBefore := m.RowOps.Load()
		sortStart := time.Now()
		sortRows(plan, out, sortKeys, m)
		if trace != nil {
			span := trace.Child("sort")
			span.SetWindow(sortStart, time.Now())
			span.SetInt("rows", int64(len(out)))
			span.SetInt("row-ops", m.RowOps.Load()-opsBefore)
		}
	}
	if plan.Limit >= 0 && len(out) > plan.Limit {
		out = out[:plan.Limit]
		if trace != nil {
			trace.Child("limit").SetInt("out", int64(len(out)))
		}
	}
	if trace != nil {
		trace.End()
		trace.SetInt("rows", int64(len(out)))
		trace.Set("simulated", m.Breakdown(e.cost).String())
	}

	m.WallTime = e.nowWall() - start
	e.obsC.publish(m, e.cost)
	return &ResultSet{Columns: plan.OutputSchema.Names(), Rows: out}, m, nil
}

// partResult is the map-side output of one partition.
type partResult struct {
	rows [][]datum.Datum // projected output (non-agg mode)
	keys [][]datum.Datum // sort keys per row (non-agg with ORDER BY)
	aggs map[string]*aggState
	// rowsOut counts rows surviving the filter (rows projected, or rows
	// folded into partial aggregates) — the split's post-filter cardinality
	// reported in EXPLAIN ANALYZE.
	rowsOut int64
	err     error
}

// execScratch holds one partition's reusable buffers: the row-major gather
// view of the current batch row, the joined-row scratch, the join/group key
// build buffer, the rendered-value scratch, the group-key datums, and the
// arena that persistent output rows are carved from.
type execScratch struct {
	row    []datum.Datum // gather view of the current batch row
	joined []datum.Datum // probe-side joined row
	keyBuf []byte        // join/group key build buffer
	valBuf []byte        // one rendered value (join-key length prefixing)
	keys   []datum.Datum // group-by key values of the current row
	arena  datumArena
}

// runPartition executes the map side of the plan over one split:
// scan → (join probe) → filter → project or partial aggregate. Rows move
// through the partition batch-at-a-time: the scan fills a pooled
// column-major RowBatch, prefilters evaluate column-wise into the batch's
// selection vector, and the filter + projection (or partial aggregation)
// run fused over the selected rows, so a document the filter parsed is
// still memoized by the doc evaluator when the projection needs it. Metric
// deltas accumulate in locals and flush once per batch.
func (e *Engine) runPartition(ctx context.Context, plan *PhysicalPlan, factory ScanSourceFactory, split int, joinTable map[string][][]datum.Datum, buildWidth int, m *Metrics) (res partResult) {
	if m.Span != nil {
		// Pre-created in split order for deterministic rendering; re-stamp
		// the wall window to the split's actual execution.
		m.Span.Begin()
		defer m.Span.End()
	}
	src, err := factory.Open(split, m)
	if err != nil {
		res.err = err
		return res
	}
	schema, err := factory.Schema()
	if err != nil {
		res.err = err
		return res
	}
	ec := &EvalContext{Doc: e.backend.NewDocEvaluator(&m.Parse), Metrics: m}
	if plan.aggregate {
		res.aggs = make(map[string]*aggState)
	}
	wantSortKeys := !plan.aggregate && len(plan.OrderBy) > 0
	preFilters := plan.Scan.PreFilters

	width := len(schema.Cols)
	batch := GetRowBatch(width, e.batchSize)
	defer PutRowBatch(batch)
	bs := asBatchSource(src, e.rowAtATime)
	sc := &execScratch{row: make([]datum.Datum, width, width+buildWidth)}

	// Per-batch local counters, flushed in one atomic add each.
	var rowOps, prefSkipped, prefBytes int64
	flush := func() {
		if rowOps != 0 {
			m.RowOps.Add(rowOps)
			rowOps = 0
		}
		if prefSkipped != 0 {
			m.PrefilterSkipped.Add(prefSkipped)
			prefSkipped = 0
		}
		if prefBytes != 0 {
			m.PrefilterBytes.Add(prefBytes)
			prefBytes = 0
		}
	}
	defer flush()

	// prefilterRow applies the Sparser-style raw filters to one materialized
	// (joined) row: a document lacking the needle cannot satisfy its equality
	// conjunct — skip it before any parsing. Escape-encoded documents (any
	// backslash) may hide the value's text, so they are never skipped — only
	// parsed and verified.
	prefilterRow := func(row []datum.Datum) bool {
		for _, pf := range preFilters {
			if pf.colIdx < 0 || pf.colIdx >= len(row) {
				continue
			}
			doc := row[pf.colIdx]
			if doc.Null {
				prefSkipped++
				return false
			}
			prefBytes += int64(len(doc.S))
			if !strings.Contains(doc.S, pf.Needle) && !strings.ContainsRune(doc.S, '\\') {
				prefSkipped++
				return false
			}
		}
		return true
	}

	// emit runs the fused filter → project / partial-aggregate tail for one
	// row that survived the prefilters.
	emit := func(row []datum.Datum) {
		if plan.Filter != nil {
			if !Truthy(Eval(plan.Filter, row, ec)) {
				return
			}
		}
		res.rowsOut++
		if plan.aggregate {
			e.accumulate(plan, row, res.aggs, ec, sc)
			return
		}
		outRow := sc.arena.alloc(len(plan.Items))
		for i, it := range plan.Items {
			outRow[i] = Eval(it.Expr, row, ec)
		}
		res.rows = append(res.rows, outRow)
		if wantSortKeys {
			keys := sc.arena.alloc(len(plan.OrderBy))
			for i, o := range plan.OrderBy {
				keys[i] = Eval(o.Expr, row, ec)
			}
			res.keys = append(res.keys, keys)
		}
	}

	for {
		// Cancellation is checked once per batch: a cancelled query returns
		// within one batch boundary rather than finishing the split.
		if err := ctx.Err(); err != nil {
			res.err = err
			return res
		}
		n, err := bs.NextBatch(batch)
		if err != nil {
			res.err = err
			return res
		}
		if n == 0 {
			return res
		}
		m.Batches.Add(1)
		if e.obsC != nil {
			e.obsC.batchRows.Observe(int64(n))
		}

		if plan.Join != nil {
			// Probe the hash table; inner join emits one row per match.
			for i := 0; i < n; i++ {
				row := batch.Gather(i, sc.row)
				key, ok := appendJoinKey(sc.keyBuf[:0], plan.Join.LeftKeys, row, ec, sc)
				sc.keyBuf = key
				if !ok {
					continue // NULL keys never join
				}
				for _, buildRow := range joinTable[string(key)] {
					joined := append(append(sc.joined[:0], row...), buildRow...)
					sc.joined = joined
					rowOps++
					if prefilterRow(joined) {
						emit(joined)
					}
				}
			}
			flush()
			continue
		}

		rowOps += int64(n)
		// Column-wise prefilter into the selection vector; the fused tail
		// only gathers rows that survived.
		sel := batch.Sel[:0]
		if len(preFilters) > 0 {
		rows:
			for i := 0; i < n; i++ {
				for _, pf := range preFilters {
					if pf.colIdx < 0 || pf.colIdx >= width {
						continue
					}
					doc := batch.Cols[pf.colIdx][i]
					if doc.Null {
						prefSkipped++
						continue rows
					}
					prefBytes += int64(len(doc.S))
					if !strings.Contains(doc.S, pf.Needle) && !strings.ContainsRune(doc.S, '\\') {
						prefSkipped++
						continue rows
					}
				}
				sel = append(sel, i)
			}
		} else {
			for i := 0; i < n; i++ {
				sel = append(sel, i)
			}
		}
		batch.Sel = sel
		for _, i := range sel {
			emit(batch.Gather(i, sc.row))
		}
		flush()
	}
}

// buildJoinTable reads the build-side table fully and hashes it by key.
func (e *Engine) buildJoinTable(ctx context.Context, plan *PhysicalPlan, m *Metrics) (map[string][][]datum.Datum, int, error) {
	build := plan.Join.Build
	factory := build.Factory
	if factory == nil {
		factory = &tableSource{e: e, scan: build}
	}
	nSplits, err := factory.NumSplits()
	if err != nil {
		return nil, 0, err
	}
	ec := &EvalContext{Doc: e.backend.NewDocEvaluator(&m.Parse), Metrics: m}
	table := make(map[string][][]datum.Datum)
	width := len(build.schema.Cols)
	batch := GetRowBatch(width, e.batchSize)
	defer PutRowBatch(batch)
	sc := &execScratch{row: make([]datum.Datum, width)}
	for split := 0; split < nSplits; split++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		src, err := factory.Open(split, m)
		if err != nil {
			return nil, 0, err
		}
		bs := asBatchSource(src, e.rowAtATime)
		for {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			n, err := bs.NextBatch(batch)
			if err != nil {
				return nil, 0, err
			}
			if n == 0 {
				break
			}
			m.Batches.Add(1)
			if e.obsC != nil {
				e.obsC.batchRows.Observe(int64(n))
			}
			m.RowOps.Add(int64(n))
			for i := 0; i < n; i++ {
				row := batch.Gather(i, sc.row)
				key, ok := appendJoinKey(sc.keyBuf[:0], plan.Join.RightKeys, row, ec, sc)
				sc.keyBuf = key
				if !ok {
					continue
				}
				cp := sc.arena.alloc(len(row))
				copy(cp, row)
				table[string(key)] = append(table[string(key)], cp)
			}
		}
	}
	return table, width, nil
}

// appendJoinKey encodes the key tuple into buf as length-prefixed binary
// fields (uvarint byte length, then the rendered value). Length prefixes
// remove both the per-row string allocation the old concatenation paid and
// its field-boundary collisions (("ab","c") vs ("a","bc") once a value
// contains the separator byte). ok=false means a NULL key, which never
// matches; an empty key tuple keeps the legacy never-matches behavior.
func appendJoinKey(buf []byte, keys []Expr, row []datum.Datum, ctx *EvalContext, sc *execScratch) ([]byte, bool) {
	if len(keys) == 0 {
		return buf, false
	}
	for _, k := range keys {
		v := Eval(k, row, ctx)
		if v.Null {
			return buf[:0], false
		}
		sc.valBuf = v.AppendTo(sc.valBuf[:0])
		buf = binary.AppendUvarint(buf, uint64(len(sc.valBuf)))
		buf = append(buf, sc.valBuf...)
	}
	return buf, true
}

// ---- aggregation ----

// aggState holds the running state of every aggregate for one group.
type aggState struct {
	groupKeys []datum.Datum
	counts    []int64
	sums      []float64
	mins      []datum.Datum
	maxs      []datum.Datum
	seen      []bool
}

func newAggState(nAggs int, keys []datum.Datum) *aggState {
	return &aggState{
		groupKeys: keys,
		counts:    make([]int64, nAggs),
		sums:      make([]float64, nAggs),
		mins:      make([]datum.Datum, nAggs),
		maxs:      make([]datum.Datum, nAggs),
		seen:      make([]bool, nAggs),
	}
}

// accumulate folds one input row into the partial aggregation map. The
// group key renders into sc.keyBuf with the same NUL-separated encoding the
// old string build produced (finalizeAggregate sorts key strings, so the
// bytes fix the group output order) and probes the map without allocating;
// only a new group copies the key bytes and datums out of the scratch.
func (e *Engine) accumulate(plan *PhysicalPlan, row []datum.Datum, aggs map[string]*aggState, ctx *EvalContext, sc *execScratch) {
	kb := sc.keyBuf[:0]
	ks := sc.keys[:0]
	for _, g := range plan.GroupBy {
		v := Eval(g, row, ctx)
		ks = append(ks, v)
		kb = v.AppendTo(kb)
		kb = append(kb, 0)
		if v.Null {
			kb = append(kb, 1) // distinguish NULL from "NULL"
		}
	}
	sc.keyBuf, sc.keys = kb, ks
	state, ok := aggs[string(kb)]
	if !ok {
		keys := sc.arena.alloc(len(ks))
		copy(keys, ks)
		state = newAggState(len(plan.Aggs), keys)
		aggs[string(kb)] = state
	}
	for i, a := range plan.Aggs {
		var v datum.Datum
		if a.Arg != nil {
			v = Eval(a.Arg, row, ctx)
			if v.Null {
				continue // SQL aggregates skip NULLs
			}
		}
		switch a.Func {
		case AggCount:
			state.counts[i]++
		case AggSum, AggAvg:
			if f, ok := v.AsFloat(); ok {
				state.sums[i] += f
				state.counts[i]++
			}
		case AggMin:
			if !state.seen[i] || datum.Compare(v, state.mins[i]) < 0 {
				state.mins[i] = v
			}
		case AggMax:
			if !state.seen[i] || datum.Compare(v, state.maxs[i]) > 0 {
				state.maxs[i] = v
			}
		}
		state.seen[i] = true
	}
}

// finalizeAggregate merges per-partition partial states, produces the
// post-aggregation rows, evaluates projections and sort keys over them.
func (e *Engine) finalizeAggregate(plan *PhysicalPlan, parts []partResult, m *Metrics) ([][]datum.Datum, error) {
	merged := make(map[string]*aggState)
	var order []string
	for _, p := range parts {
		for key, st := range p.aggs {
			m.RowOps.Add(1)
			dst, ok := merged[key]
			if !ok {
				merged[key] = st
				order = append(order, key)
				continue
			}
			for i, a := range plan.Aggs {
				switch a.Func {
				case AggCount:
					dst.counts[i] += st.counts[i]
				case AggSum, AggAvg:
					dst.sums[i] += st.sums[i]
					dst.counts[i] += st.counts[i]
				case AggMin:
					if st.seen[i] && (!dst.seen[i] || datum.Compare(st.mins[i], dst.mins[i]) < 0) {
						dst.mins[i] = st.mins[i]
					}
				case AggMax:
					if st.seen[i] && (!dst.seen[i] || datum.Compare(st.maxs[i], dst.maxs[i]) > 0) {
						dst.maxs[i] = st.maxs[i]
					}
				}
				dst.seen[i] = dst.seen[i] || st.seen[i]
			}
		}
	}
	// Global aggregation with no input rows still yields one row.
	if len(plan.GroupBy) == 0 && len(order) == 0 {
		key := ""
		merged[key] = newAggState(len(plan.Aggs), nil)
		order = append(order, key)
	}
	sort.Strings(order) // deterministic group order pre-sort

	ctx := &EvalContext{Metrics: m}
	var out [][]datum.Datum
	for _, key := range order {
		st := merged[key]
		post := make([]datum.Datum, 0, len(plan.GroupBy)+len(plan.Aggs))
		post = append(post, st.groupKeys...)
		for i, a := range plan.Aggs {
			post = append(post, finalizeAgg(a.Func, st, i))
		}
		if plan.Having != nil && !Truthy(Eval(plan.Having, post, ctx)) {
			continue
		}
		outRow := make([]datum.Datum, len(plan.Items))
		for i, it := range plan.Items {
			outRow[i] = Eval(it.Expr, post, ctx)
		}
		// Sort keys for agg plans are evaluated over post rows and stored
		// by appending them after the visible columns; sortRows slices
		// them back off.
		for _, o := range plan.OrderBy {
			outRow = append(outRow, Eval(o.Expr, post, ctx))
		}
		out = append(out, outRow)
		m.RowOps.Add(1)
	}
	return out, nil
}

func finalizeAgg(f AggFunc, st *aggState, i int) datum.Datum {
	switch f {
	case AggCount:
		return datum.Int(st.counts[i])
	case AggSum:
		if st.counts[i] == 0 {
			return datum.NullOf(datum.TypeFloat64)
		}
		return datum.Float(st.sums[i])
	case AggAvg:
		if st.counts[i] == 0 {
			return datum.NullOf(datum.TypeFloat64)
		}
		return datum.Float(st.sums[i] / float64(st.counts[i]))
	case AggMin:
		if !st.seen[i] {
			return datum.NullOf(datum.TypeString)
		}
		return st.mins[i]
	case AggMax:
		if !st.seen[i] {
			return datum.NullOf(datum.TypeString)
		}
		return st.maxs[i]
	}
	return datum.NullOf(datum.TypeString)
}

// ---- distinct / sort / limit ----

func distinctRows(rows, keys [][]datum.Datum, m *Metrics) ([][]datum.Datum, [][]datum.Datum) {
	seen := make(map[string]bool, len(rows))
	outRows := rows[:0:0]
	var outKeys [][]datum.Datum
	var kb []byte
	for i, row := range rows {
		kb = kb[:0]
		for _, d := range row {
			kb = d.AppendTo(kb)
			kb = append(kb, 0)
		}
		m.RowOps.Add(1)
		if seen[string(kb)] {
			continue
		}
		seen[string(kb)] = true
		outRows = append(outRows, row)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	return outRows, outKeys
}

// sortRows orders rows by the plan's ORDER BY. Non-aggregate plans carry
// precomputed key tuples; aggregate plans appended keys to each row.
func sortRows(plan *PhysicalPlan, rows, keys [][]datum.Datum, m *Metrics) {
	nVisible := len(plan.Items)
	keyOf := func(i int, k int) datum.Datum {
		if keys != nil {
			return keys[i][k]
		}
		return rows[i][nVisible+k]
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		m.RowOps.Add(1)
		for k, o := range plan.OrderBy {
			c := datum.Compare(keyOf(idx[a], k), keyOf(idx[b], k))
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([][]datum.Datum, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
	// Trim hidden agg sort keys.
	if keys == nil {
		for i := range rows {
			rows[i] = rows[i][:nVisible]
		}
	}
}
