package sqlengine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/simtime"
	"repro/internal/warehouse"
)

// newBenchEngine builds a plain-column table (no JSON payloads) so these
// benchmarks measure executor overhead — batch plumbing, selection vectors,
// key encoding — rather than parse cost, which dominates the Table II
// workloads and would mask the scan-path allocations we care about here.
func newBenchEngine(rows int, opts ...EngineOption) *Engine {
	clock := simtime.NewSim(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
	fs := dfs.New(dfs.WithClock(clock))
	wh := warehouse.New(fs, warehouse.WithClock(clock),
		warehouse.WithWriterOptions(orc.WriterOptions{RowGroupRows: 512}))
	wh.CreateDatabase("bench")
	schema := orc.Schema{Columns: []orc.Column{
		{Name: "a", Type: datum.TypeInt64},
		{Name: "tag", Type: datum.TypeString},
		{Name: "s", Type: datum.TypeString},
	}}
	if err := wh.CreateTable("bench", "t", schema); err != nil {
		panic(err)
	}
	const fileRows = 2048
	for off := 0; off < rows; off += fileRows {
		n := fileRows
		if rows-off < n {
			n = rows - off
		}
		batch := make([][]datum.Datum, 0, n)
		for i := 0; i < n; i++ {
			id := off + i
			batch = append(batch, []datum.Datum{
				datum.Int(int64(id)),
				datum.Str(fmt.Sprintf("g%d", id%8)),
				datum.Str(fmt.Sprintf("val-%04d", id%100)),
			})
		}
		if _, err := wh.AppendRows("bench", "t", batch); err != nil {
			panic(err)
		}
		clock.Advance(time.Hour)
	}
	return NewEngine(wh, append([]EngineOption{
		WithDefaultDB("bench"),
		WithParallelism(1),
	}, opts...)...)
}

const execBenchRows = 8192

var execBenchQueries = []struct {
	name string
	sql  string
}{
	{"scan", `SELECT a, tag, s FROM bench.t`},
	{"filter", `SELECT a, s FROM bench.t WHERE a >= 2048 AND tag = 'g3'`},
	{"agg", `SELECT tag, COUNT(*) n, SUM(a) total, MIN(s) lo FROM bench.t GROUP BY tag`},
}

func benchExecQueries(b *testing.B, e *Engine) {
	for _, q := range execBenchQueries {
		q := q
		b.Run(q.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rs, _, err := e.Query(q.sql)
				if err != nil {
					b.Fatal(err)
				}
				if len(rs.Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkExecBatch measures the vectorized pipeline at several batch
// sizes; size1 degenerates to one row per batch and bounds the pipeline's
// fixed overhead.
func BenchmarkExecBatch(b *testing.B) {
	for _, size := range []int{1024, 128, 1} {
		size := size
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			benchExecQueries(b, newBenchEngine(execBenchRows, WithBatchSize(size)))
		})
	}
}

// BenchmarkExecRow is the legacy row-at-a-time baseline (every scan forced
// through RowSourceAdapter) that BenchmarkExecBatch is judged against.
func BenchmarkExecRow(b *testing.B) {
	benchExecQueries(b, newBenchEngine(execBenchRows, WithRowAtATime(true)))
}
