package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/datum"
)

// RowSchema names the columns of a row stream. Columns may carry a
// qualifier so joins can disambiguate t1.x from t2.x.
type RowSchema struct {
	Cols []RowCol
}

// RowCol is one column of a RowSchema.
type RowCol struct {
	Qualifier string
	Name      string
	Type      datum.Type
}

// Index resolves a (qualifier, name) reference. An empty qualifier matches
// any column with the name, erroring on ambiguity.
func (s RowSchema) Index(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if qualifier != "" {
			ref = qualifier + "." + name
		}
		return -1, fmt.Errorf("sql: unknown column %q", ref)
	}
	return found, nil
}

// Names returns the bare column names in order.
func (s RowSchema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Bind resolves every column reference in e against schema, storing row
// indexes in the nodes. Aggregate nodes are bound by bindAggregates
// instead; encountering one here is an error.
func Bind(e Expr, schema RowSchema) error {
	var firstErr error
	Walk(e, func(n Expr) {
		switch node := n.(type) {
		case *ColumnRef:
			idx, err := schema.Index(node.Qualifier, node.Name)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			node.index = idx
		case *CachePlaceholder:
			idx, err := schema.Index("", node.OutputName)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			node.index = idx
		case *Aggregate:
			if firstErr == nil {
				firstErr = fmt.Errorf("sql: aggregate %s not allowed here", node.String())
			}
		}
	})
	return firstErr
}

// EvalContext carries per-partition evaluation state.
type EvalContext struct {
	// Eval extracts JSONPath values from raw documents; nil when the plan
	// contains no JSONPathExpr (e.g. fully cache-served queries).
	Doc DocEvaluator
	// Metrics receives row-op accounting.
	Metrics *Metrics
}

// Eval evaluates a bound expression over a row.
func Eval(e Expr, row []datum.Datum, ctx *EvalContext) datum.Datum {
	switch node := e.(type) {
	case *Literal:
		return node.Value
	case *ColumnRef:
		if node.index < 0 || node.index >= len(row) {
			return datum.NullOf(datum.TypeString)
		}
		return row[node.index]
	case *CachePlaceholder:
		if node.index < 0 || node.index >= len(row) {
			return datum.NullOf(datum.TypeString)
		}
		return row[node.index]
	case *keyRef:
		if node.index < 0 || node.index >= len(row) {
			return datum.NullOf(datum.TypeString)
		}
		return row[node.index]
	case *JSONPathExpr:
		doc := Eval(node.Column, row, ctx)
		if doc.Null || ctx.Doc == nil {
			return datum.NullOf(datum.TypeString)
		}
		s, ok := ctx.Doc.Extract(doc.S, node.Path)
		if !ok {
			return datum.NullOf(datum.TypeString)
		}
		return datum.Str(s)
	case *Binary:
		return evalBinary(node, row, ctx)
	case *Not:
		v := Eval(node.Inner, row, ctx)
		b := datum.Coerce(v, datum.TypeBool)
		if b.Null {
			return datum.NullOf(datum.TypeBool)
		}
		return datum.Bool(!b.B)
	case *IsNull:
		v := Eval(node.Inner, row, ctx)
		if node.Negate {
			return datum.Bool(!v.Null)
		}
		return datum.Bool(v.Null)
	case *Like:
		v := Eval(node.Inner, row, ctx)
		if v.Null {
			return datum.NullOf(datum.TypeBool)
		}
		return datum.Bool(likeMatch(v.AsString(), node.Pattern))
	case *FuncCall:
		return evalFunc(node, row, ctx)
	case *Aggregate:
		// Bound post-aggregation: the aggregate's value sits in the row at
		// its computed offset.
		if node.aggIndex >= 0 && node.aggIndex < len(row) {
			return row[node.aggIndex]
		}
		return datum.NullOf(datum.TypeFloat64)
	default:
		return datum.NullOf(datum.TypeString)
	}
}

// evalBinary implements SQL three-valued logic for AND/OR and NULL
// propagation for arithmetic/comparisons.
func evalBinary(b *Binary, row []datum.Datum, ctx *EvalContext) datum.Datum {
	switch b.Op {
	case OpAnd, OpOr:
		l := datum.Coerce(Eval(b.Left, row, ctx), datum.TypeBool)
		if b.Op == OpAnd {
			if !l.Null && !l.B {
				return datum.Bool(false)
			}
			r := datum.Coerce(Eval(b.Right, row, ctx), datum.TypeBool)
			if !r.Null && !r.B {
				return datum.Bool(false)
			}
			if l.Null || r.Null {
				return datum.NullOf(datum.TypeBool)
			}
			return datum.Bool(true)
		}
		if !l.Null && l.B {
			return datum.Bool(true)
		}
		r := datum.Coerce(Eval(b.Right, row, ctx), datum.TypeBool)
		if !r.Null && r.B {
			return datum.Bool(true)
		}
		if l.Null || r.Null {
			return datum.NullOf(datum.TypeBool)
		}
		return datum.Bool(false)
	}

	l := Eval(b.Left, row, ctx)
	r := Eval(b.Right, row, ctx)
	if l.Null || r.Null {
		if b.Op >= OpEq && b.Op <= OpGe {
			return datum.NullOf(datum.TypeBool)
		}
		return datum.NullOf(datum.TypeFloat64)
	}
	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c := compareForPredicate(l, r)
		switch b.Op {
		case OpEq:
			return datum.Bool(c == 0)
		case OpNe:
			return datum.Bool(c != 0)
		case OpLt:
			return datum.Bool(c < 0)
		case OpLe:
			return datum.Bool(c <= 0)
		case OpGt:
			return datum.Bool(c > 0)
		default:
			return datum.Bool(c >= 0)
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return datum.NullOf(datum.TypeFloat64)
		}
		var out float64
		switch b.Op {
		case OpAdd:
			out = lf + rf
		case OpSub:
			out = lf - rf
		case OpMul:
			out = lf * rf
		case OpDiv:
			if rf == 0 {
				return datum.NullOf(datum.TypeFloat64)
			}
			out = lf / rf
		case OpMod:
			if rf == 0 {
				return datum.NullOf(datum.TypeFloat64)
			}
			out = math.Mod(lf, rf)
		}
		// Keep integer arithmetic integral when both sides are ints.
		if l.Typ == datum.TypeInt64 && r.Typ == datum.TypeInt64 && b.Op != OpDiv && out == math.Trunc(out) {
			return datum.Int(int64(out))
		}
		return datum.Float(out)
	}
	return datum.NullOf(datum.TypeString)
}

// compareForPredicate compares with numeric preference: get_json_object
// returns strings, but predicates like path > 10000 should compare
// numerically when both sides look numeric — matching Hive/Spark's implicit
// cast of the string side of a comparison with a numeric literal.
func compareForPredicate(l, r datum.Datum) int {
	if l.Typ != r.Typ {
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if lok && rok {
			switch {
			case lf < rf:
				return -1
			case lf > rf:
				return 1
			default:
				return 0
			}
		}
	}
	return datum.Compare(l, r)
}

func evalFunc(fc *FuncCall, row []datum.Datum, ctx *EvalContext) datum.Datum {
	args := make([]datum.Datum, len(fc.Args))
	for i, a := range fc.Args {
		args[i] = Eval(a, row, ctx)
	}
	switch fc.Name {
	case "length":
		if len(args) == 1 && !args[0].Null {
			return datum.Int(int64(len(args[0].AsString())))
		}
	case "upper":
		if len(args) == 1 && !args[0].Null {
			return datum.Str(strings.ToUpper(args[0].AsString()))
		}
	case "lower":
		if len(args) == 1 && !args[0].Null {
			return datum.Str(strings.ToLower(args[0].AsString()))
		}
	case "concat":
		var sb strings.Builder
		for _, a := range args {
			if a.Null {
				return datum.NullOf(datum.TypeString)
			}
			sb.WriteString(a.AsString())
		}
		return datum.Str(sb.String())
	case "abs":
		if len(args) == 1 {
			if f, ok := args[0].AsFloat(); ok {
				if args[0].Typ == datum.TypeInt64 {
					return datum.Int(int64(math.Abs(f)))
				}
				return datum.Float(math.Abs(f))
			}
		}
	case "cast_double":
		if len(args) == 1 {
			return datum.Coerce(args[0], datum.TypeFloat64)
		}
	case "cast_bigint":
		if len(args) == 1 {
			return datum.Coerce(args[0], datum.TypeInt64)
		}
	}
	return datum.NullOf(datum.TypeString)
}

// likeMatch implements SQL LIKE semantics: '%' matches any (possibly
// empty) run, '_' exactly one character, everything else literally.
func likeMatch(s, pattern string) bool {
	// Iterative matcher with single backtrack point for '%', the classic
	// wildcard algorithm.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			pi = star + 1
			sBack++
			si = sBack
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Truthy reports whether a predicate result is SQL-true.
func Truthy(d datum.Datum) bool {
	b := datum.Coerce(d, datum.TypeBool)
	return !b.Null && b.B
}

// CountExprNodes counts nodes in an expression tree (plan-time metering).
func CountExprNodes(e Expr) int64 {
	var n int64
	Walk(e, func(Expr) { n++ })
	return n
}
