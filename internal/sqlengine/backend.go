package sqlengine

import (
	"sync/atomic"

	"repro/internal/jsonpath"
	"repro/internal/mison"
	"repro/internal/sjson"
)

// ParseMeter accumulates JSON-parsing work across a query execution. It is
// updated atomically because scan partitions run in parallel.
type ParseMeter struct {
	Docs    atomic.Int64 // documents parsed / indexed
	Bytes   atomic.Int64 // bytes actually scanned by the JSON parser
	Skipped atomic.Int64 // bytes never scanned (streaming early exit)
	Calls   atomic.Int64 // get_json_object evaluations
	// TreeFallback counts documents that fell off the streaming/index lane
	// onto a full tree parse (root-path projections, paths a structural
	// index cannot serve). With wildcard paths now streaming, this should
	// stay at zero for ordinary workloads — a nonzero value is the signal
	// that a query shape still escapes the single-pass extractor.
	TreeFallback atomic.Int64
}

// Snapshot returns a plain-struct copy.
func (m *ParseMeter) Snapshot() ParseCounts {
	return ParseCounts{
		Docs:         m.Docs.Load(),
		Bytes:        m.Bytes.Load(),
		Skipped:      m.Skipped.Load(),
		Calls:        m.Calls.Load(),
		TreeFallback: m.TreeFallback.Load(),
	}
}

// ParseCounts is a point-in-time copy of a ParseMeter.
type ParseCounts struct {
	Docs, Bytes, Skipped, Calls, TreeFallback int64
}

// ParserBackend evaluates get_json_object against raw JSON text. Engine
// executions pick one; the paper's Fig 15 compares Jackson (tree parser)
// with Mison (structural index).
type ParserBackend interface {
	// Name identifies the backend in experiment output.
	Name() string
	// NewDocEvaluator returns a per-partition evaluator. Evaluators are not
	// shared across goroutines.
	NewDocEvaluator(meter *ParseMeter) DocEvaluator
}

// DocEvaluator extracts path values from one document at a time. Extract
// returns the scalar rendering and whether the value was present.
type DocEvaluator interface {
	Extract(doc string, path *jsonpath.Path) (string, bool)
}

// ---- Jackson-style backend: full tree parse per document ----

// JacksonBackend parses the whole document into a tree and navigates it,
// the way SparkSQL's default Jackson-based get_json_object behaves. A
// per-document memo avoids re-parsing when several paths hit the same
// document in one row (SparkSQL caches the parsed tree per input string in
// the same way).
type JacksonBackend struct{}

// Name implements ParserBackend.
func (JacksonBackend) Name() string { return "jackson" }

// NewDocEvaluator implements ParserBackend.
func (JacksonBackend) NewDocEvaluator(meter *ParseMeter) DocEvaluator {
	return &jacksonEval{meter: meter}
}

type jacksonEval struct {
	meter   *ParseMeter
	lastDoc string
	lastVal *sjson.Value
	lastErr bool
}

func (j *jacksonEval) Extract(doc string, path *jsonpath.Path) (string, bool) {
	j.meter.Calls.Add(1)
	if doc != j.lastDoc || (j.lastVal == nil && !j.lastErr) {
		root, err := sjson.ParseString(doc)
		j.meter.Docs.Add(1)
		j.meter.Bytes.Add(int64(len(doc)))
		j.lastDoc = doc
		j.lastErr = err != nil
		if err != nil {
			j.lastVal = nil
		} else {
			j.lastVal = root
		}
	}
	if j.lastVal == nil {
		return "", false
	}
	v := path.Eval(j.lastVal)
	if v.IsNull() {
		return "", false
	}
	return v.Scalar(), true
}

// ---- Mison-style backend: structural index projection ----

// MisonBackend projects paths straight out of the raw bytes via the
// structural index, skipping tree materialization.
type MisonBackend struct{}

// Name implements ParserBackend.
func (MisonBackend) Name() string { return "mison" }

// NewDocEvaluator implements ParserBackend.
func (MisonBackend) NewDocEvaluator(meter *ParseMeter) DocEvaluator {
	return &misonEval{meter: meter, pathIdx: make(map[string]int)}
}

// misonEval batches every path of the query through one projector, so each
// document's structural index is built once and all fields project out of
// it — Mison's intended mode. The path set grows as the first row
// encounters each get_json_object call; later rows project all paths in a
// single pass.
type misonEval struct {
	meter   *ParseMeter
	paths   []*jsonpath.Path
	pathIdx map[string]int
	pr      *mison.Projector
	lastDoc string
	lastRes []mison.Result
	// tree serves wildcard paths the index cannot.
	tree *jacksonEval
}

func (m *misonEval) Extract(doc string, path *jsonpath.Path) (string, bool) {
	m.meter.Calls.Add(1)
	// The structural index serves point lookups only; wildcard paths fan
	// out over arrays and need the tree (Mison's real limitation).
	if path.HasWildcard() {
		if m.tree == nil {
			m.tree = &jacksonEval{meter: m.meter}
		} else {
			m.tree.meter = m.meter
		}
		m.meter.Calls.Add(-1) // the tree evaluator counts the call itself
		m.meter.TreeFallback.Add(1)
		return m.tree.Extract(doc, path)
	}
	key := path.Canonical()
	idx, known := m.pathIdx[key]
	if !known {
		m.paths = append(m.paths, path)
		idx = len(m.paths) - 1
		m.pathIdx[key] = idx
		m.pr = mison.NewProjector(m.paths...)
		m.lastRes = nil // force re-projection with the grown path set
	}
	if doc != m.lastDoc || m.lastRes == nil {
		m.lastRes = m.pr.Project([]byte(doc))
		m.lastDoc = doc
		m.meter.Docs.Add(1)
		m.meter.Bytes.Add(int64(len(doc)))
	}
	res := m.lastRes[idx]
	return res.Scalar, res.Present
}

// ---- On-demand backend: single-pass streaming trie extraction ----

// StreamBackend evaluates get_json_object with the streaming multi-path
// extractor (sjson.Parser.Extract): the query's trie-eligible paths —
// wildcards included, via array-iteration trie nodes — compile into one
// jsonpath.PathSet, each document is scanned exactly once with unrequested
// subtrees skipped at tokenizer speed, and the scan early-exits when every
// path has resolved. Only root projections fall back to the tree parser,
// metered by ParseMeter.TreeFallback.
type StreamBackend struct{}

// Name implements ParserBackend.
func (StreamBackend) Name() string { return "ondemand" }

// NewDocEvaluator implements ParserBackend.
func (StreamBackend) NewDocEvaluator(meter *ParseMeter) DocEvaluator {
	return &streamEval{meter: meter, pathIdx: make(map[string]int)}
}

// streamEval grows its path set as the first row encounters each
// get_json_object call (like misonEval); later rows resolve every path in a
// single streaming pass, memoized per document.
type streamEval struct {
	meter   *ParseMeter
	paths   []*jsonpath.Path
	pathIdx map[string]int
	set     *jsonpath.PathSet
	parser  sjson.Parser
	docBuf  []byte
	vals    []*sjson.Value
	lastDoc string
	valid   bool // vals corresponds to lastDoc under the current path set
	lastErr bool
	// tree serves root projections, the one shape the trie cannot.
	tree *jacksonEval
}

func (s *streamEval) Extract(doc string, path *jsonpath.Path) (string, bool) {
	s.meter.Calls.Add(1)
	if !jsonpath.TrieEligible(path) {
		// Only root projections remain here now that wildcard paths compile
		// into array-iteration trie nodes.
		if s.tree == nil {
			s.tree = &jacksonEval{meter: s.meter}
		}
		s.meter.Calls.Add(-1) // the tree evaluator counts the call itself
		s.meter.TreeFallback.Add(1)
		return s.tree.Extract(doc, path)
	}
	key := path.Canonical()
	idx, known := s.pathIdx[key]
	if !known {
		s.paths = append(s.paths, path)
		idx = len(s.paths) - 1
		s.pathIdx[key] = idx
		set, err := jsonpath.NewPathSet(s.paths...)
		if err != nil {
			// Unreachable: every registered path passed TrieEligible.
			panic(err)
		}
		s.set = set
		s.vals = make([]*sjson.Value, len(s.paths))
		s.valid = false // force re-extraction with the grown path set
	}
	if doc != s.lastDoc || !s.valid {
		// The previous document's values die here, so the arena can recycle.
		s.parser.ResetValues()
		s.docBuf = append(s.docBuf[:0], doc...)
		//lint:ignore arenaescape s.vals is the evaluator's memo for the current document; the ResetValues above retires it before every re-extract
		scanned, err := s.set.Extract(&s.parser, s.docBuf, s.vals)
		s.meter.Docs.Add(1)
		s.meter.Bytes.Add(int64(scanned))
		s.meter.Skipped.Add(int64(len(doc) - scanned))
		s.lastDoc = doc
		s.valid = true
		s.lastErr = err != nil
	}
	if s.lastErr {
		return "", false
	}
	v := s.vals[idx]
	if v.IsNull() {
		return "", false
	}
	return v.Scalar(), true
}
