package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/datum"
	"repro/internal/jsonpath"
)

// ParseError reports a SQL syntax error.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at offset %d: %s", e.Pos, e.Msg)
}

// Parse parses one SELECT statement.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := Lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.accept(TokKeyword, "EXPLAIN")
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt.Explain = explain
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().Text)
	}
	return stmt, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	if !p.at(kind, text) {
		return Token{}, p.errf("expected %q, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.accept(TokKeyword, "DISTINCT")

	// Projections.
	for {
		if p.accept(TokPunct, "*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: expr}
			if p.accept(TokKeyword, "AS") {
				t, err := p.expect(TokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = t.Text
			} else if p.at(TokIdent, "") {
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.accept(TokPunct, ",") {
			break
		}
	}

	// FROM.
	if _, err := p.expect(TokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	// Optional JOIN.
	if p.accept(TokKeyword, "INNER") {
		if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
			return nil, err
		}
		if err := p.parseJoin(stmt); err != nil {
			return nil, err
		}
	} else if p.accept(TokKeyword, "JOIN") {
		if err := p.parseJoin(stmt); err != nil {
			return nil, err
		}
	}

	// WHERE.
	if p.accept(TokKeyword, "WHERE") {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}

	// GROUP BY.
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}

	// HAVING.
	if p.accept(TokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}

	// ORDER BY.
	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}

	// LIMIT.
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseJoin(stmt *SelectStmt) error {
	right, err := p.parseTableRef()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokKeyword, "ON"); err != nil {
		return err
	}
	on, err := p.parseExpr()
	if err != nil {
		return err
	}
	stmt.Join = &JoinClause{Right: right, On: on}
	return nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: t.Text}
	if p.accept(TokPunct, ".") {
		t2, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.DB = ref.Table
		ref.Table = t2.Text
	}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expect(TokIdent, "")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.Text
	} else if p.at(TokIdent, "") {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// ---- Expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: inner}, nil
	}
	return p.parseComparison()
}

var compareOps = map[string]BinaryOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.accept(TokKeyword, "IS") {
		negate := p.accept(TokKeyword, "NOT")
		if _, err := p.expect(TokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Inner: left, Negate: negate}, nil
	}
	negated := false
	if p.at(TokKeyword, "NOT") && (p.toks[p.pos+1].Text == "IN" || p.toks[p.pos+1].Text == "LIKE" || p.toks[p.pos+1].Text == "BETWEEN") {
		p.next()
		negated = true
	}
	if p.accept(TokKeyword, "IN") {
		expr, err := p.parseInList(left)
		if err != nil {
			return nil, err
		}
		if negated {
			return &Not{Inner: expr}, nil
		}
		return expr, nil
	}
	if p.accept(TokKeyword, "LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		lit, ok := pat.(*Literal)
		if !ok || lit.Value.Typ != datum.TypeString {
			return nil, p.errf("LIKE pattern must be a string literal")
		}
		var expr Expr = &Like{Inner: left, Pattern: lit.Value.S}
		if negated {
			expr = &Not{Inner: expr}
		}
		return expr, nil
	}
	if negated && !p.at(TokKeyword, "BETWEEN") {
		return nil, p.errf("expected IN, LIKE, or BETWEEN after NOT")
	}
	if negated {
		// NOT BETWEEN: parse the BETWEEN below and wrap.
		p.accept(TokKeyword, "BETWEEN")
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Not{Inner: &Binary{
			Op:    OpAnd,
			Left:  &Binary{Op: OpGe, Left: left, Right: lo},
			Right: &Binary{Op: OpLe, Left: left, Right: hi},
		}}, nil
	}
	if p.accept(TokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{
			Op:    OpAnd,
			Left:  &Binary{Op: OpGe, Left: left, Right: lo},
			Right: &Binary{Op: OpLe, Left: left, Right: hi},
		}, nil
	}
	if p.cur().Kind == TokOp {
		if op, ok := compareOps[p.cur().Text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.at(TokOp, "+"):
			op = OpAdd
		case p.at(TokOp, "-"):
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.at(TokPunct, "*"):
			op = OpMul
		case p.at(TokOp, "/"):
			op = OpDiv
		case p.at(TokOp, "%"):
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpSub, Left: &Literal{Value: datum.Int(0)}, Right: inner}, nil
	}
	return p.parsePrimary()
}

// parseInList parses (e1, e2, ...) after IN and desugars it into an OR
// chain of equalities, which reuses the engine's comparison semantics.
func (p *parser) parseInList(left Expr) (Expr, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var out Expr
	for {
		item, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		eq := &Binary{Op: OpEq, Left: left, Right: item}
		if out == nil {
			out = eq
		} else {
			out = &Binary{Op: OpOr, Left: out, Right: eq}
		}
		if !p.accept(TokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return out, nil
}

var aggFuncs = map[string]AggFunc{
	"count": AggCount, "sum": AggSum, "min": AggMin, "max": AggMax, "avg": AggAvg,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &Literal{Value: datum.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.Text)
		}
		return &Literal{Value: datum.Int(n)}, nil
	case TokString:
		p.next()
		return &Literal{Value: datum.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: datum.NullOf(datum.TypeString)}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: datum.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: datum.Bool(false)}, nil
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokPunct:
		if t.Text == "(" {
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
		return nil, p.errf("unexpected %q", t.Text)
	case TokIdent:
		p.next()
		name := t.Text
		// Function call?
		if p.accept(TokPunct, "(") {
			return p.parseCall(name)
		}
		// Qualified column?
		if p.accept(TokPunct, ".") {
			t2, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: name, Name: t2.Text}, nil
		}
		return &ColumnRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q", t.Text)
	}
}

func (p *parser) parseCall(name string) (Expr, error) {
	lower := strings.ToLower(name)
	// COUNT(*) special case.
	if lower == "count" && p.accept(TokPunct, "*") {
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &Aggregate{Func: AggCount}, nil
	}
	var args []Expr
	if !p.accept(TokPunct, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if agg, ok := aggFuncs[lower]; ok {
		if len(args) != 1 {
			return nil, p.errf("%s expects exactly one argument", strings.ToUpper(lower))
		}
		return &Aggregate{Func: agg, Arg: args[0]}, nil
	}
	if lower == "get_json_object" {
		if len(args) != 2 {
			return nil, p.errf("get_json_object expects (column, path)")
		}
		col, ok := args[0].(*ColumnRef)
		if !ok {
			return nil, p.errf("get_json_object first argument must be a column")
		}
		lit, ok := args[1].(*Literal)
		if !ok || lit.Value.Typ != datum.TypeString {
			return nil, p.errf("get_json_object second argument must be a string literal")
		}
		path, err := jsonpath.Compile(lit.Value.S)
		if err != nil {
			return nil, p.errf("get_json_object: %v", err)
		}
		return &JSONPathExpr{Column: col, Path: path}, nil
	}
	return &FuncCall{Name: lower, Args: args}, nil
}
