// Package sqlengine implements the SparkSQL-like analytics engine Maxson
// plugs into: a SQL subset (SELECT / FROM / JOIN / WHERE / GROUP BY /
// ORDER BY / LIMIT plus the get_json_object UDF), physical plans built from
// scan/filter/project/aggregate/join/sort operators, and a partition-
// parallel executor over warehouse tables.
//
// Every query execution meters its work in three phases — Read (bytes moved
// from storage), Parse (JSON documents and bytes parsed by UDFs), and
// Compute (rows processed by operators) — mirroring the breakdowns in the
// paper's Fig 3 and Fig 12. The metered counts feed a calibrated cost model
// (cost.go) so experiments report deterministic times alongside wall-clock.
package sqlengine

import (
	"fmt"
	"strings"
)

// TokenKind identifies lexical token classes.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokString
	TokNumber
	TokOp    // comparison/arithmetic operators
	TokPunct // ( ) , .
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // keywords uppercased; identifiers as written
	Pos  int    // byte offset in the input
}

// keywords recognized by the parser (uppercased).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "JOIN": true, "ON": true, "ASC": true, "DESC": true,
	"BETWEEN": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INNER": true, "IS": true, "DISTINCT": true,
	"HAVING": true, "IN": true, "LIKE": true, "EXPLAIN": true,
}

// LexError reports a tokenization failure.
type LexError struct {
	Pos int
	Msg string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("sql: lex error at offset %d: %s", e.Pos, e.Msg)
}

// Lex tokenizes a SQL string.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(input) && input[i+1] == '-':
			for i < len(input) && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < len(input) && isIdentPart(input[i]) {
				i++
			}
			text := input[start:i]
			upper := strings.ToUpper(text)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: text, Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			seenDot := false
			for i < len(input) && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' && !seenDot) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == quote {
					if i+1 < len(input) && input[i+1] == quote {
						sb.WriteByte(quote) // doubled quote escapes itself
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				if input[i] == '\\' && i+1 < len(input) {
					i++
					switch input[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(input[i])
					}
					i++
					continue
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &LexError{Pos: start, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: i})
			i++
		case c == '=' || c == '+' || c == '-' || c == '/' || c == '%':
			toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
			i++
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, Token{Kind: TokOp, Text: input[i : i+2], Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: "<", Pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: ">=", Pos: i})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokOp, Text: ">", Pos: i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, Token{Kind: TokOp, Text: "!=", Pos: i})
				i += 2
			} else {
				return nil, &LexError{Pos: i, Msg: "unexpected '!'"}
			}
		default:
			return nil, &LexError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: len(input)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
