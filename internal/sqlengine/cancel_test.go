package sqlengine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/dfs"
	"repro/internal/obs"
	"repro/internal/orc"
	"repro/internal/simtime"
	"repro/internal/warehouse"
	"time"
)

func newCancelTestEngine(t *testing.T, opts ...EngineOption) *Engine {
	t.Helper()
	clock := simtime.NewSim(time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC))
	fs := dfs.New(dfs.WithClock(clock))
	wh := warehouse.New(fs, warehouse.WithClock(clock))
	wh.CreateDatabase("db")
	schema := orc.Schema{Columns: []orc.Column{{Name: "id", Type: datum.TypeInt64}}}
	if err := wh.CreateTable("db", "t", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([][]datum.Datum, 8)
	for i := range rows {
		rows[i] = []datum.Datum{datum.Int(int64(i))}
	}
	if _, err := wh.AppendRows("db", "t", rows); err != nil {
		t.Fatal(err)
	}
	return NewEngine(wh, append([]EngineOption{WithDefaultDB("db")}, opts...)...)
}

// cancellingFactory yields a single split whose RowSource cancels the query
// context during its first Next call and then keeps producing rows. If the
// executor honours cancellation at batch boundaries, it stops after the
// batch in flight; if not, the source's hard cap fails the test instead of
// hanging it.
type cancellingFactory struct {
	schema RowSchema
	cancel context.CancelFunc
	calls  int
}

func (f *cancellingFactory) NumSplits() (int, error)    { return 1, nil }
func (f *cancellingFactory) Schema() (RowSchema, error) { return f.schema, nil }
func (f *cancellingFactory) Open(split int, m *Metrics) (RowSource, error) {
	return (*cancellingSource)(f), nil
}

type cancellingSource cancellingFactory

func (s *cancellingSource) Next() ([]datum.Datum, error) {
	s.calls++
	if s.calls == 1 {
		s.cancel()
	}
	if s.calls > 10000 {
		return nil, fmt.Errorf("source drained %d rows after cancellation", s.calls)
	}
	return []datum.Datum{datum.Int(int64(s.calls))}, nil
}

// TestChaosCancelWithinOneBatch verifies the acceptance criterion that a
// cancelled context stops execution within one batch boundary: the source
// that triggered the cancel is asked for at most one more full batch
// (the one in flight) and the query returns context.Canceled.
func TestChaosCancelWithinOneBatch(t *testing.T) {
	const batchSize = 4
	e := newCancelTestEngine(t, WithBatchSize(batchSize), WithParallelism(1))

	plan, _, err := e.PlanOnly(`SELECT id FROM db.t`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &cancellingFactory{schema: plan.Scan.Schema(), cancel: cancel}
	plan.Scan.Factory = f

	before := OutstandingBatches()
	_, _, err = e.ExecuteCtx(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancel fired inside batch 1; the executor may finish filling that
	// batch (batchSize rows) but must not start another.
	if f.calls > batchSize+1 {
		t.Fatalf("source was asked for %d rows after cancellation (batch size %d): cancellation not honoured at the batch boundary", f.calls, batchSize)
	}
	if got := OutstandingBatches(); got != before {
		t.Fatalf("pooled RowBatch leak: outstanding %d before, %d after", before, got)
	}
}

// TestChaosPreCancelledContext verifies a context cancelled before execution
// never opens a split.
func TestChaosPreCancelledContext(t *testing.T) {
	e := newCancelTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.QueryCtx(ctx, `SELECT id FROM db.t`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestChaosQueryTimeout verifies WithQueryTimeout bounds every query.
func TestChaosQueryTimeout(t *testing.T) {
	e := newCancelTestEngine(t, WithQueryTimeout(time.Nanosecond), WithParallelism(1))
	_, _, err := e.Query(`SELECT id FROM db.t`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// panickingFactory panics inside a split worker, exercising the per-split
// recover that converts panics into attributed query errors.
type panickingFactory struct{ schema RowSchema }

func (f *panickingFactory) NumSplits() (int, error)    { return 1, nil }
func (f *panickingFactory) Schema() (RowSchema, error) { return f.schema, nil }
func (f *panickingFactory) Open(split int, m *Metrics) (RowSource, error) {
	panic("synthetic split failure")
}

// TestChaosSplitPanicRecovered verifies a worker panic surfaces as an error
// naming the split — not a crashed process — increments the panic counter,
// and leaks no pooled batches.
func TestChaosSplitPanicRecovered(t *testing.T) {
	e := newCancelTestEngine(t, WithParallelism(2))
	r := obs.NewRegistry()
	e.SetObsRegistry(r)

	plan, _, err := e.PlanOnly(`SELECT id FROM db.t`)
	if err != nil {
		t.Fatal(err)
	}
	plan.Scan.Factory = &panickingFactory{schema: plan.Scan.Schema()}

	before := OutstandingBatches()
	_, _, err = e.Execute(plan)
	if err == nil {
		t.Fatal("want panic converted to error, got nil")
	}
	if !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "split 0") {
		t.Fatalf("panic error lacks split attribution: %v", err)
	}
	if !strings.Contains(err.Error(), "db.t") {
		t.Fatalf("panic error lacks table attribution: %v", err)
	}
	if got := r.Counter("engine_split_panics_total").Value(); got != 1 {
		t.Fatalf("engine_split_panics_total = %d, want 1", got)
	}
	if got := OutstandingBatches(); got != before {
		t.Fatalf("pooled RowBatch leak after panic: outstanding %d before, %d after", before, got)
	}
}
