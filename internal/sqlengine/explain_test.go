package sqlengine

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestExplainAnalyzeAnnotatedTree(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, WithObsRegistry(reg))
	out, rs, m, err := e.ExplainAnalyze(`
		SELECT date, get_json_object(sale_logs, '$.turnover') AS turnover
		FROM mydb.t
		WHERE get_json_object(sale_logs, '$.sale_count') > 3
		ORDER BY date DESC
		LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 5 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"Limit 5",
		"Sort date DESC",
		"Filter",
		"Scan mydb.t",
		"split 0: raw",
		"split 2: raw",
		"splits=3",
		"parse-docs=31",
		"totals:",
		"simulated: read ",
		"plan:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if m.Trace == nil || m.Trace.FindChild("plan") == nil {
		t.Error("trace missing plan span")
	}
	// The engine registry saw the query.
	s := reg.Snapshot()
	if s.Counter("engine_queries_total") != 1 {
		t.Errorf("engine_queries_total = %d", s.Counter("engine_queries_total"))
	}
	if s.Counter("engine_parse_docs_total") != 31 {
		t.Errorf("engine_parse_docs_total = %d", s.Counter("engine_parse_docs_total"))
	}
}

func TestQueryTracedMatchesUntracedResults(t *testing.T) {
	e := newTestEngine(t)
	rs1, m1, err := e.Query("SELECT COUNT(*) AS n FROM mydb.t")
	if err != nil {
		t.Fatal(err)
	}
	rs2, m2, err := e.QueryTraced("SELECT COUNT(*) AS n FROM mydb.t")
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Rows[0][0].I != rs2.Rows[0][0].I {
		t.Errorf("traced result diverged: %v vs %v", rs1.Rows[0], rs2.Rows[0])
	}
	if m1.SimulatedTime(e.cost) != m2.SimulatedTime(e.cost) {
		t.Errorf("tracing changed simulated time: %v vs %v",
			m1.SimulatedTime(e.cost), m2.SimulatedTime(e.cost))
	}
	if m1.Trace != nil {
		t.Error("untraced query grew a trace")
	}
	if m2.Trace == nil {
		t.Error("traced query missing trace")
	}
}
