package sqlengine

// Plan-level expression traversal, rewrite, and rebinding. These are the
// primitives external plan rewriters build on: Maxson's cache planner swaps
// JSON extractions for cache-column placeholders, and the scan-share
// scheduler swaps them for shared-extraction columns. Both then rebind the
// surviving expressions against the scan's rebuilt schema.

// VisitPlanExprs walks every expression of the plan that can reference the
// scan's output: select items, the residual filter, group keys, aggregate
// arguments, order keys, and join keys.
func VisitPlanExprs(plan *PhysicalPlan, f func(Expr)) {
	visit := func(e Expr) {
		if e != nil {
			Walk(e, f)
		}
	}
	for _, it := range plan.Items {
		visit(it.Expr)
	}
	visit(plan.Filter)
	for _, g := range plan.GroupBy {
		visit(g)
	}
	for _, a := range plan.Aggs {
		visit(a.Arg)
	}
	for _, o := range plan.OrderBy {
		visit(o.Expr)
	}
	if plan.Join != nil {
		for _, k := range plan.Join.LeftKeys {
			visit(k)
		}
		for _, k := range plan.Join.RightKeys {
			visit(k)
		}
	}
}

// RewritePlanExprs applies a rewrite to every plan expression slot that
// VisitPlanExprs covers.
func RewritePlanExprs(plan *PhysicalPlan, f func(Expr) Expr) {
	for i := range plan.Items {
		if plan.Items[i].Expr != nil {
			plan.Items[i].Expr = f(plan.Items[i].Expr)
		}
	}
	if plan.Filter != nil {
		plan.Filter = f(plan.Filter)
	}
	for i := range plan.GroupBy {
		plan.GroupBy[i] = f(plan.GroupBy[i])
	}
	for _, a := range plan.Aggs {
		if a.Arg != nil {
			a.Arg = f(a.Arg)
		}
	}
	for i := range plan.OrderBy {
		plan.OrderBy[i].Expr = f(plan.OrderBy[i].Expr)
	}
	if plan.Join != nil {
		for i := range plan.Join.LeftKeys {
			plan.Join.LeftKeys[i] = f(plan.Join.LeftKeys[i])
		}
		for i := range plan.Join.RightKeys {
			plan.Join.RightKeys[i] = f(plan.Join.RightKeys[i])
		}
	}
}

// Rebind re-resolves every plan expression against the plan's (rebuilt)
// input schema. Post-aggregation items reference keyRefs/aggregates only and
// are left alone; group keys and aggregate arguments rebind. Join keys bind
// against their own side's scan schema.
func (plan *PhysicalPlan) Rebind() error {
	input := plan.InputSchema
	bind := func(e Expr) error {
		if e == nil {
			return nil
		}
		return Bind(e, input)
	}
	if err := bind(plan.Filter); err != nil {
		return err
	}
	if len(plan.Aggs) > 0 || len(plan.GroupBy) > 0 {
		for _, g := range plan.GroupBy {
			if err := bind(g); err != nil {
				return err
			}
		}
		for _, a := range plan.Aggs {
			if err := bind(a.Arg); err != nil {
				return err
			}
		}
		// Items/OrderBy in aggregate plans are post-agg expressions
		// (keyRef/Aggregate only) — no rebinding needed or possible.
		return nil
	}
	for i := range plan.Items {
		if err := bind(plan.Items[i].Expr); err != nil {
			return err
		}
	}
	for i := range plan.OrderBy {
		if err := bind(plan.OrderBy[i].Expr); err != nil {
			return err
		}
	}
	if plan.Join != nil {
		for _, k := range plan.Join.LeftKeys {
			if err := Bind(k, plan.Scan.Schema()); err != nil {
				return err
			}
		}
		for _, k := range plan.Join.RightKeys {
			if err := Bind(k, plan.Join.Build.Schema()); err != nil {
				return err
			}
		}
	}
	return nil
}
