package sqlengine

import (
	"context"
	"runtime"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/warehouse"
)

// Engine executes SQL against a warehouse, SparkSQL-style. Engines are safe
// for concurrent Query calls.
type Engine struct {
	wh          *warehouse.Warehouse
	backend     ParserBackend
	parallelism int
	defaultDB   string
	cost        CostModel
	sparser     bool
	// batchSize is the rows-per-batch of the vectorized scan pipeline;
	// rowAtATime forces every scan through the legacy RowSourceAdapter.
	batchSize  int
	rowAtATime bool
	// queryTimeout, when positive, bounds each query's execution; the
	// deadline is checked at batch boundaries like any cancellation.
	queryTimeout time.Duration
	// PlanModifier, when set, rewrites physical plans after planning —
	// Maxson installs its MaxsonParser here. The returned extra node count
	// is added to PlanExprNodes so Fig 13 sees the modification overhead.
	PlanModifier func(plan *PhysicalPlan, stmt *SelectStmt) (extraNodes int64, err error)

	// scanShare, when set, batches compatible concurrent scans into one
	// shared pass (internal/scanshare). Consulted after planning, before
	// execution; nil means every query scans for itself.
	scanShare ScanSharer

	// obsReg publishes engine-lifetime totals; obsC holds the pre-resolved
	// counter handles so per-query publication is lock-free.
	obsReg *obs.Registry
	obsC   *engineCounters
}

// engineCounters are the engine's registry instruments, resolved once so
// the per-query publish path never touches the registry lock.
type engineCounters struct {
	queries          *obs.Counter
	bytesRead        *obs.Counter
	rowsScanned      *obs.Counter
	rowGroupsRead    *obs.Counter
	rowGroupsSkipped *obs.Counter
	parseDocs        *obs.Counter
	parseBytes       *obs.Counter
	parseSkipped     *obs.Counter
	parseCalls       *obs.Counter
	parseTreeFB      *obs.Counter
	rowOps           *obs.Counter
	prefilterSkipped *obs.Counter
	cacheValuesRead  *obs.Counter
	cacheMisses      *obs.Counter
	splitPanics      *obs.Counter
	ioRetries        *obs.Counter
	simNanos         *obs.Histogram
	wallNanos        *obs.Histogram
	batchRows        *obs.Histogram
}

func newEngineCounters(r *obs.Registry) *engineCounters {
	return &engineCounters{
		queries:          r.Counter("engine_queries_total"),
		bytesRead:        r.Counter("engine_bytes_read_total"),
		rowsScanned:      r.Counter("engine_rows_scanned_total"),
		rowGroupsRead:    r.Counter("engine_rowgroups_read_total"),
		rowGroupsSkipped: r.Counter("engine_rowgroups_skipped_total"),
		parseDocs:        r.Counter("engine_parse_docs_total"),
		parseBytes:       r.Counter("engine_parse_bytes_total"),
		parseSkipped:     r.Counter("engine_parse_bytes_skipped_total"),
		parseCalls:       r.Counter("engine_parse_calls_total"),
		parseTreeFB:      r.Counter("engine_parse_tree_fallback_total"),
		rowOps:           r.Counter("engine_row_ops_total"),
		prefilterSkipped: r.Counter("engine_prefilter_skipped_total"),
		cacheValuesRead:  r.Counter("engine_cache_values_read_total"),
		cacheMisses:      r.Counter("engine_cache_misses_total"),
		splitPanics:      r.Counter("engine_split_panics_total"),
		ioRetries:        r.Counter("engine_io_retries_total"),
		simNanos:         r.Histogram("engine_query_sim_ns"),
		wallNanos:        r.Histogram("engine_query_wall_ns"),
		batchRows:        r.Histogram("engine_batch_rows_count"),
	}
}

// publish folds one finished query's metrics into the engine totals.
func (c *engineCounters) publish(m *Metrics, cm CostModel) {
	if c == nil {
		return
	}
	c.queries.Inc()
	c.bytesRead.Add(m.BytesRead.Load())
	c.rowsScanned.Add(m.RowsScanned.Load())
	c.rowGroupsRead.Add(m.RowGroupsRead.Load())
	c.rowGroupsSkipped.Add(m.RowGroupsSkipped.Load())
	pc := m.Parse.Snapshot()
	c.parseDocs.Add(pc.Docs)
	c.parseBytes.Add(pc.Bytes)
	c.parseSkipped.Add(pc.Skipped)
	c.parseCalls.Add(pc.Calls)
	c.parseTreeFB.Add(pc.TreeFallback)
	c.rowOps.Add(m.RowOps.Load())
	c.prefilterSkipped.Add(m.PrefilterSkipped.Load())
	c.cacheValuesRead.Add(m.CacheValuesRead.Load())
	c.cacheMisses.Add(m.CacheMisses.Load())
	c.simNanos.Observe(int64(m.SimulatedTime(cm)))
	c.wallNanos.Observe(int64(m.WallTime))
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithBackend selects the JSON parser backend (default Jackson-style).
func WithBackend(b ParserBackend) EngineOption {
	return func(e *Engine) {
		if b != nil {
			e.backend = b
		}
	}
}

// WithParallelism caps concurrent partitions (default GOMAXPROCS).
func WithParallelism(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.parallelism = n
		}
	}
}

// WithDefaultDB sets the database used by unqualified table names.
func WithDefaultDB(db string) EngineOption {
	return func(e *Engine) { e.defaultDB = db }
}

// WithSparser enables Sparser-style raw-byte prefiltering: selective
// string-equality predicates on JSON paths skip parsing for documents that
// cannot match.
func WithSparser(on bool) EngineOption {
	return func(e *Engine) { e.sparser = on }
}

// WithBatchSize sets how many rows each scan batch carries through the
// vectorized execution pipeline (default DefaultBatchSize). Values < 1 are
// ignored. Small batches trade cache locality for lower latency-to-first-row;
// the default suits analytical scans.
func WithBatchSize(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.batchSize = n
		}
	}
}

// WithRowAtATime forces every scan through the legacy row-at-a-time
// RowSourceAdapter even when the source implements BatchSource — the escape
// hatch for debugging and the substrate of the batch/row equivalence tests.
func WithRowAtATime(on bool) EngineOption {
	return func(e *Engine) { e.rowAtATime = on }
}

// WithCostModel overrides the calibrated cost model.
func WithCostModel(cm CostModel) EngineOption {
	return func(e *Engine) { e.cost = cm }
}

// WithQueryTimeout bounds every query's execution time. Zero (the default)
// means no limit. The deadline is enforced at batch boundaries, so a query
// returns within one batch of it expiring.
func WithQueryTimeout(d time.Duration) EngineOption {
	return func(e *Engine) {
		if d > 0 {
			e.queryTimeout = d
		}
	}
}

// WithObsRegistry attaches a metrics registry; the engine publishes its
// lifetime totals (bytes read, parse work, row ops, cache reads, …) there.
func WithObsRegistry(r *obs.Registry) EngineOption {
	return func(e *Engine) { e.SetObsRegistry(r) }
}

// NewEngine builds an engine over a warehouse.
func NewEngine(wh *warehouse.Warehouse, opts ...EngineOption) *Engine {
	e := &Engine{
		wh:          wh,
		backend:     JacksonBackend{},
		parallelism: runtime.GOMAXPROCS(0),
		defaultDB:   "default",
		cost:        DefaultCostModel(),
		batchSize:   DefaultBatchSize,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Warehouse returns the engine's warehouse.
func (e *Engine) Warehouse() *warehouse.Warehouse { return e.wh }

// Backend returns the active parser backend.
func (e *Engine) Backend() ParserBackend { return e.backend }

// CostModel returns the engine's cost model.
func (e *Engine) CostModel() CostModel { return e.cost }

// SetObsRegistry installs (or replaces) the engine's metrics registry. It
// is a no-op when r is nil; call before serving queries.
func (e *Engine) SetObsRegistry(r *obs.Registry) {
	if r == nil {
		return
	}
	e.obsReg = r
	e.obsC = newEngineCounters(r)
	c := e.obsC
	e.wh.SetRetryNotify(func() { c.ioRetries.Inc() })
	r.GaugeFunc("engine_row_batches_outstanding_count", OutstandingBatches)
}

// ObsRegistry returns the attached metrics registry (nil when none).
func (e *Engine) ObsRegistry() *obs.Registry { return e.obsReg }

// nowWall reads the wall clock for WallTime metering.
func (e *Engine) nowWall() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// Query parses, plans, and executes one SELECT. The returned metrics carry
// both plan-time and execution-time accounting.
func (e *Engine) Query(sql string) (*ResultSet, *Metrics, error) {
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx is Query under a context: cancellation and deadlines are
// honored at batch boundaries, so the call returns within one batch of the
// context being cancelled.
func (e *Engine) QueryCtx(ctx context.Context, sql string) (*ResultSet, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return e.QueryStmtCtx(ctx, stmt)
}

// QueryStmt plans and executes a parsed statement.
func (e *Engine) QueryStmt(stmt *SelectStmt) (*ResultSet, *Metrics, error) {
	return e.QueryStmtCtx(context.Background(), stmt)
}

// QueryStmtCtx is QueryStmt under a context.
func (e *Engine) QueryStmtCtx(ctx context.Context, stmt *SelectStmt) (*ResultSet, *Metrics, error) {
	_, rs, m, err := e.queryStmt(ctx, stmt, false)
	return rs, m, err
}

// QueryTraced executes sql recording a span tree (plan → per-split scan →
// aggregate/sort/…) into the returned Metrics.Trace. It is the substrate
// of EXPLAIN ANALYZE.
func (e *Engine) QueryTraced(sql string) (*ResultSet, *Metrics, error) {
	return e.QueryTracedCtx(context.Background(), sql)
}

// QueryTracedCtx is QueryTraced under a context: the traced run honors
// cancellation and the engine query timeout like any other query.
func (e *Engine) QueryTracedCtx(ctx context.Context, sql string) (*ResultSet, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	_, rs, m, err := e.queryStmt(ctx, stmt, true)
	return rs, m, err
}

// queryStmt plans and executes one statement, optionally tracing, and also
// returns the physical plan (EXPLAIN ANALYZE renders from it).
func (e *Engine) queryStmt(ctx context.Context, stmt *SelectStmt, traced bool) (*PhysicalPlan, *ResultSet, *Metrics, error) {
	if e.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.queryTimeout)
		defer cancel()
	}
	planStart := time.Now()
	plan, err := e.Plan(stmt)
	if err != nil {
		return nil, nil, nil, err
	}
	planNodes := countPlanNodes(stmt)
	var extra int64
	if e.PlanModifier != nil {
		extra, err = e.PlanModifier(plan, stmt)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	planWall := time.Since(planStart)

	if stmt.Explain {
		m := &Metrics{PlanWall: planWall, PlanExprNodes: planNodes + extra}
		rs := &ResultSet{Columns: []string{"plan"}}
		for _, line := range strings.Split(plan.String(), "\n") {
			rs.Rows = append(rs.Rows, []datum.Datum{datum.Str(line)})
		}
		return plan, rs, m, nil
	}

	// Offer the plan to the shared-scan scheduler. Traced queries keep
	// their own pass (spans describe a private scan), as do joins (two
	// scans, one plan — not worth the pairing complexity).
	if e.scanShare != nil && !traced && plan.Join == nil {
		h, err := e.scanShare.Attach(ctx, e, plan)
		if err != nil {
			return nil, nil, nil, err
		}
		if h != nil {
			defer h.Release()
		}
	}

	var trace *obs.Span
	if traced {
		trace = obs.NewSpan("query")
		trace.SetWindow(planStart, time.Time{}) // root covers planning too
		planSpan := trace.Child("plan")
		planSpan.SetWindow(planStart, planStart.Add(planWall))
		planSpan.SetInt("expr-nodes", planNodes+extra)
		planSpan.SetDur("simulated",
			time.Duration(float64(planNodes+extra)*e.cost.PlanNsPerExprNode))
	}
	rs, m, err := e.execute(ctx, plan, trace)
	if err != nil {
		return nil, nil, nil, err
	}
	m.PlanWall = planWall
	m.PlanExprNodes = planNodes + extra
	// Correlate the metrics (and through them the scan spans) with the
	// flight recorder's query ID when one rides the context.
	m.QueryID = flight.FromContext(ctx).ID()
	return plan, rs, m, nil
}

// PlanOnly parses and plans without executing; used by the Fig 13 plan-time
// experiment.
func (e *Engine) PlanOnly(sql string) (*PhysicalPlan, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	m := &Metrics{}
	planStart := time.Now()
	plan, err := e.Plan(stmt)
	if err != nil {
		return nil, nil, err
	}
	// Count statement nodes before the modifier runs: plan expressions can
	// alias statement expressions, and the modifier rewrites them in place.
	planNodes := countPlanNodes(stmt)
	var extra int64
	if e.PlanModifier != nil {
		extra, err = e.PlanModifier(plan, stmt)
		if err != nil {
			return nil, nil, err
		}
	}
	m.PlanWall = time.Since(planStart)
	m.PlanExprNodes = planNodes + extra
	return plan, m, nil
}

// countPlanNodes counts expression nodes across the statement — the unit of
// plan-generation work in the Fig 13 comparison.
func countPlanNodes(stmt *SelectStmt) int64 {
	var n int64
	for _, it := range stmt.Items {
		if !it.Star {
			n += CountExprNodes(it.Expr)
		}
	}
	if stmt.Where != nil {
		n += CountExprNodes(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		n += CountExprNodes(g)
	}
	for _, o := range stmt.OrderBy {
		n += CountExprNodes(o.Expr)
	}
	if stmt.Join != nil {
		n += CountExprNodes(stmt.Join.On)
	}
	return n
}
