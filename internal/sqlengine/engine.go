package sqlengine

import (
	"runtime"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/warehouse"
)

// Engine executes SQL against a warehouse, SparkSQL-style. Engines are safe
// for concurrent Query calls.
type Engine struct {
	wh          *warehouse.Warehouse
	backend     ParserBackend
	parallelism int
	defaultDB   string
	cost        CostModel
	sparser     bool
	// PlanModifier, when set, rewrites physical plans after planning —
	// Maxson installs its MaxsonParser here. The returned extra node count
	// is added to PlanExprNodes so Fig 13 sees the modification overhead.
	PlanModifier func(plan *PhysicalPlan, stmt *SelectStmt) (extraNodes int64, err error)
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithBackend selects the JSON parser backend (default Jackson-style).
func WithBackend(b ParserBackend) EngineOption {
	return func(e *Engine) {
		if b != nil {
			e.backend = b
		}
	}
}

// WithParallelism caps concurrent partitions (default GOMAXPROCS).
func WithParallelism(n int) EngineOption {
	return func(e *Engine) {
		if n > 0 {
			e.parallelism = n
		}
	}
}

// WithDefaultDB sets the database used by unqualified table names.
func WithDefaultDB(db string) EngineOption {
	return func(e *Engine) { e.defaultDB = db }
}

// WithSparser enables Sparser-style raw-byte prefiltering: selective
// string-equality predicates on JSON paths skip parsing for documents that
// cannot match.
func WithSparser(on bool) EngineOption {
	return func(e *Engine) { e.sparser = on }
}

// WithCostModel overrides the calibrated cost model.
func WithCostModel(cm CostModel) EngineOption {
	return func(e *Engine) { e.cost = cm }
}

// NewEngine builds an engine over a warehouse.
func NewEngine(wh *warehouse.Warehouse, opts ...EngineOption) *Engine {
	e := &Engine{
		wh:          wh,
		backend:     JacksonBackend{},
		parallelism: runtime.GOMAXPROCS(0),
		defaultDB:   "default",
		cost:        DefaultCostModel(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Warehouse returns the engine's warehouse.
func (e *Engine) Warehouse() *warehouse.Warehouse { return e.wh }

// Backend returns the active parser backend.
func (e *Engine) Backend() ParserBackend { return e.backend }

// CostModel returns the engine's cost model.
func (e *Engine) CostModel() CostModel { return e.cost }

// nowWall reads the wall clock for WallTime metering.
func (e *Engine) nowWall() time.Duration {
	return time.Duration(time.Now().UnixNano())
}

// Query parses, plans, and executes one SELECT. The returned metrics carry
// both plan-time and execution-time accounting.
func (e *Engine) Query(sql string) (*ResultSet, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return e.QueryStmt(stmt)
}

// QueryStmt plans and executes a parsed statement.
func (e *Engine) QueryStmt(stmt *SelectStmt) (*ResultSet, *Metrics, error) {
	planStart := time.Now()
	plan, err := e.Plan(stmt)
	if err != nil {
		return nil, nil, err
	}
	planNodes := countPlanNodes(stmt)
	var extra int64
	if e.PlanModifier != nil {
		extra, err = e.PlanModifier(plan, stmt)
		if err != nil {
			return nil, nil, err
		}
	}
	planWall := time.Since(planStart)

	if stmt.Explain {
		m := &Metrics{PlanWall: planWall, PlanExprNodes: planNodes + extra}
		rs := &ResultSet{Columns: []string{"plan"}}
		for _, line := range strings.Split(plan.String(), "\n") {
			rs.Rows = append(rs.Rows, []datum.Datum{datum.Str(line)})
		}
		return rs, m, nil
	}

	rs, m, err := e.Execute(plan)
	if err != nil {
		return nil, nil, err
	}
	m.PlanWall = planWall
	m.PlanExprNodes = planNodes + extra
	return rs, m, nil
}

// PlanOnly parses and plans without executing; used by the Fig 13 plan-time
// experiment.
func (e *Engine) PlanOnly(sql string) (*PhysicalPlan, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	m := &Metrics{}
	planStart := time.Now()
	plan, err := e.Plan(stmt)
	if err != nil {
		return nil, nil, err
	}
	// Count statement nodes before the modifier runs: plan expressions can
	// alias statement expressions, and the modifier rewrites them in place.
	planNodes := countPlanNodes(stmt)
	var extra int64
	if e.PlanModifier != nil {
		extra, err = e.PlanModifier(plan, stmt)
		if err != nil {
			return nil, nil, err
		}
	}
	m.PlanWall = time.Since(planStart)
	m.PlanExprNodes = planNodes + extra
	return plan, m, nil
}

// countPlanNodes counts expression nodes across the statement — the unit of
// plan-generation work in the Fig 13 comparison.
func countPlanNodes(stmt *SelectStmt) int64 {
	var n int64
	for _, it := range stmt.Items {
		if !it.Star {
			n += CountExprNodes(it.Expr)
		}
	}
	if stmt.Where != nil {
		n += CountExprNodes(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		n += CountExprNodes(g)
	}
	for _, o := range stmt.OrderBy {
		n += CountExprNodes(o.Expr)
	}
	if stmt.Join != nil {
		n += CountExprNodes(stmt.Join.On)
	}
	return n
}
