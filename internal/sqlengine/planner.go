package sqlengine

import (
	"fmt"
	"strings"

	"repro/internal/datum"
	"repro/internal/orc"
)

// Plan compiles a parsed statement into a physical plan bound against the
// warehouse catalog. It mirrors SparkSQL's pipeline: resolve tables, decide
// which storage columns each scan needs, push storage-column predicates
// down as SARGs, extract aggregates, and bind every expression.
func (e *Engine) Plan(stmt *SelectStmt) (*PhysicalPlan, error) {
	plan := &PhysicalPlan{Limit: stmt.Limit, Distinct: stmt.Distinct}

	leftScan, err := e.makeScan(stmt.From)
	if err != nil {
		return nil, err
	}
	plan.Scan = leftScan
	fullInput := leftScan.schema

	// Join resolution (key splitting only; binding happens after pruning).
	if stmt.Join != nil {
		rightScan, err := e.makeScan(stmt.Join.Right)
		if err != nil {
			return nil, err
		}
		leftKeys, rightKeys, err := splitJoinKeys(stmt.Join.On, leftScan, rightScan)
		if err != nil {
			return nil, err
		}
		plan.Join = &JoinNode{Build: rightScan, LeftKeys: leftKeys, RightKeys: rightKeys}
		fullInput = RowSchema{Cols: append(append([]RowCol{}, leftScan.schema.Cols...), rightScan.schema.Cols...)}
	}

	// Expand SELECT * against the full input schema.
	items := make([]SelectItem, 0, len(stmt.Items))
	for _, it := range stmt.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, c := range fullInput.Cols {
			items = append(items, SelectItem{
				Expr:  &ColumnRef{Qualifier: c.Qualifier, Name: c.Name},
				Alias: c.Name,
			})
		}
	}
	plan.Items = items

	// Restrict scans to referenced columns (projection pushdown); every
	// expression binds against the pruned schema below.
	e.pruneScanColumns(plan, stmt)
	inputSchema := plan.InputSchema

	// Join keys bind against each side's pruned schema.
	if plan.Join != nil {
		for _, k := range plan.Join.LeftKeys {
			if err := Bind(k, plan.Scan.schema); err != nil {
				return nil, err
			}
		}
		for _, k := range plan.Join.RightKeys {
			if err := Bind(k, plan.Join.Build.schema); err != nil {
				return nil, err
			}
		}
	}

	// Aggregate extraction.
	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range plan.Items {
		if exprHasAggregate(it.Expr) {
			hasAgg = true
		}
	}
	for _, o := range stmt.OrderBy {
		if exprHasAggregate(o.Expr) {
			hasAgg = true
		}
	}
	if stmt.Having != nil {
		hasAgg = true
	}
	plan.aggregate = hasAgg

	// WHERE binding + SARG pushdown (storage columns only).
	if stmt.Where != nil {
		if err := Bind(stmt.Where, inputSchema); err != nil {
			return nil, err
		}
		plan.Filter = stmt.Where
		plan.Scan.SARG = extractSARG(stmt.Where, plan.Scan)
		if e.sparser {
			plan.Scan.PreFilters = extractPrefilters(stmt.Where, plan.Scan)
		}
	}

	if hasAgg {
		if err := e.planAggregate(plan, stmt); err != nil {
			return nil, err
		}
	} else {
		for _, it := range plan.Items {
			if err := Bind(it.Expr, inputSchema); err != nil {
				return nil, err
			}
		}
		plan.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
		for i := range plan.OrderBy {
			if err := bindOrderItem(&plan.OrderBy[i], plan, inputSchema); err != nil {
				return nil, err
			}
		}
	}

	// Output schema from item names.
	for _, it := range plan.Items {
		plan.OutputSchema.Cols = append(plan.OutputSchema.Cols, RowCol{
			Name: it.OutputName(), Type: datum.TypeString,
		})
	}
	return plan, nil
}

// makeScan resolves a table reference into a scan node covering all its
// columns (pruned later).
func (e *Engine) makeScan(ref TableRef) (*ScanNode, error) {
	db := ref.DB
	if db == "" {
		db = e.defaultDB
	}
	info, err := e.wh.Table(db, ref.Table)
	if err != nil {
		return nil, err
	}
	scan := &ScanNode{DB: db, Table: ref.Table, Binding: ref.Binding()}
	for _, c := range info.Schema.Columns {
		scan.Columns = append(scan.Columns, c.Name)
		scan.schema.Cols = append(scan.schema.Cols, RowCol{
			Qualifier: scan.Binding, Name: c.Name, Type: c.Type,
		})
	}
	return scan, nil
}

// pruneScanColumns narrows each scan to the columns actually referenced by
// the statement — the projection pushdown that Maxson's modified plan later
// tightens further by dropping fully cached JSON columns.
func (e *Engine) pruneScanColumns(plan *PhysicalPlan, stmt *SelectStmt) {
	used := map[string]bool{} // "binding\x00name"
	mark := func(expr Expr) {
		Walk(expr, func(n Expr) {
			if c, ok := n.(*ColumnRef); ok {
				used[strings.ToLower(c.Qualifier)+"\x00"+strings.ToLower(c.Name)] = true
			}
		})
	}
	for _, it := range plan.Items {
		mark(it.Expr)
	}
	if stmt.Where != nil {
		mark(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		mark(g)
	}
	for _, o := range stmt.OrderBy {
		mark(o.Expr)
	}
	if stmt.Having != nil {
		mark(stmt.Having)
	}
	if plan.Join != nil {
		for _, k := range plan.Join.LeftKeys {
			mark(k)
		}
		for _, k := range plan.Join.RightKeys {
			mark(k)
		}
	}
	prune := func(scan *ScanNode, other *ScanNode) {
		var cols []string
		var schemaCols []RowCol
		for i, name := range scan.Columns {
			key := strings.ToLower(scan.Binding) + "\x00" + strings.ToLower(name)
			bare := "\x00" + strings.ToLower(name)
			// An unqualified reference keeps the column unless the other
			// table also has it (then it would have been ambiguous anyway).
			keep := used[key] || used[bare] && (other == nil || !otherHas(other, name))
			if keep {
				cols = append(cols, name)
				schemaCols = append(schemaCols, scan.schema.Cols[i])
			}
		}
		// A scan must output at least one column to drive row counts.
		if len(cols) == 0 && len(scan.Columns) > 0 {
			cols = scan.Columns[:1]
			schemaCols = scan.schema.Cols[:1]
		}
		scan.Columns = cols
		scan.schema = RowSchema{Cols: schemaCols}
	}
	var right *ScanNode
	if plan.Join != nil {
		right = plan.Join.Build
	}
	prune(plan.Scan, right)
	if plan.Join != nil {
		prune(plan.Join.Build, plan.Scan)
		plan.InputSchema = RowSchema{Cols: append(append([]RowCol{}, plan.Scan.schema.Cols...), plan.Join.Build.schema.Cols...)}
	} else {
		plan.InputSchema = plan.Scan.schema
	}
}

func otherHas(scan *ScanNode, name string) bool {
	for _, c := range scan.Columns {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// splitJoinKeys decomposes an ON condition into equality key pairs. Only
// conjunctions of left=right equalities are supported (hash join).
func splitJoinKeys(on Expr, left, right *ScanNode) (leftKeys, rightKeys []Expr, err error) {
	var conjuncts []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == OpAnd {
			flatten(b.Left)
			flatten(b.Right)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	flatten(on)
	for _, c := range conjuncts {
		b, ok := c.(*Binary)
		if !ok || b.Op != OpEq {
			return nil, nil, fmt.Errorf("sql: join ON must be equality conjunction, got %s", c.String())
		}
		lSide, lOK := sideOf(b.Left, left, right)
		rSide, rOK := sideOf(b.Right, left, right)
		if !lOK || !rOK || lSide == rSide {
			return nil, nil, fmt.Errorf("sql: join key %s must compare one column from each table", c.String())
		}
		if lSide == 0 {
			leftKeys = append(leftKeys, b.Left)
			rightKeys = append(rightKeys, b.Right)
		} else {
			leftKeys = append(leftKeys, b.Right)
			rightKeys = append(rightKeys, b.Left)
		}
	}
	return leftKeys, rightKeys, nil
}

// sideOf reports which scan the expression's columns belong to: 0 left,
// 1 right. Mixed or no columns reports !ok.
func sideOf(e Expr, left, right *ScanNode) (side int, ok bool) {
	side = -1
	ok = true
	Walk(e, func(n Expr) {
		c, isCol := n.(*ColumnRef)
		if !isCol {
			return
		}
		var s int
		switch {
		case strings.EqualFold(c.Qualifier, left.Binding):
			s = 0
		case strings.EqualFold(c.Qualifier, right.Binding):
			s = 1
		case c.Qualifier == "":
			if _, err := left.schema.Index("", c.Name); err == nil {
				s = 0
			} else {
				s = 1
			}
		default:
			ok = false
			return
		}
		if side >= 0 && side != s {
			ok = false
		}
		side = s
	})
	if side < 0 {
		ok = false
	}
	return side, ok
}

// extractSARG converts storage-column-vs-literal conjuncts of a bound WHERE
// clause into an ORC search argument for the scan. Predicates over
// expressions (like get_json_object) are left to the filter; Maxson's plan
// modifier later converts cached-path predicates into cache-table SARGs.
func extractSARG(where Expr, scan *ScanNode) *orc.SARG {
	var preds []orc.Predicate
	var visit func(e Expr)
	visit = func(e Expr) {
		b, ok := e.(*Binary)
		if !ok {
			return
		}
		if b.Op == OpAnd {
			visit(b.Left)
			visit(b.Right)
			return
		}
		op, ok := sargOp(b.Op)
		if !ok {
			return
		}
		if col, lit, swapped := colLitPair(b.Left, b.Right); col != nil {
			if !strings.EqualFold(col.Qualifier, scan.Binding) && col.Qualifier != "" {
				return
			}
			if !otherHas(scan, col.Name) {
				return
			}
			if swapped {
				op = mirrorOp(op)
			}
			preds = append(preds, orc.Predicate{Column: storageName(scan, col.Name), Op: op, Value: lit.Value})
		}
	}
	visit(where)
	return orc.NewSARG(preds...)
}

func storageName(scan *ScanNode, name string) string {
	for _, c := range scan.Columns {
		if strings.EqualFold(c, name) {
			return c
		}
	}
	return name
}

func colLitPair(l, r Expr) (col *ColumnRef, lit *Literal, swapped bool) {
	if c, ok := l.(*ColumnRef); ok {
		if v, ok := r.(*Literal); ok {
			return c, v, false
		}
	}
	if c, ok := r.(*ColumnRef); ok {
		if v, ok := l.(*Literal); ok {
			return c, v, true
		}
	}
	return nil, nil, false
}

func sargOp(op BinaryOp) (orc.CompareOp, bool) {
	switch op {
	case OpEq:
		return orc.OpEQ, true
	case OpNe:
		return orc.OpNE, true
	case OpLt:
		return orc.OpLT, true
	case OpLe:
		return orc.OpLE, true
	case OpGt:
		return orc.OpGT, true
	case OpGe:
		return orc.OpGE, true
	}
	return 0, false
}

// mirrorOp flips an operator for literal-op-column order.
func mirrorOp(op orc.CompareOp) orc.CompareOp {
	switch op {
	case orc.OpLT:
		return orc.OpGT
	case orc.OpLE:
		return orc.OpGE
	case orc.OpGT:
		return orc.OpLT
	case orc.OpGE:
		return orc.OpLE
	default:
		return op
	}
}

// extractPrefilters pulls Sparser-style raw filters out of top-level AND
// conjuncts: get_json_object(col, p) = 'literal' with a clean literal means
// a matching document must contain "literal" (quoted) verbatim.
func extractPrefilters(where Expr, scan *ScanNode) []RawPrefilter {
	var out []RawPrefilter
	var visit func(e Expr)
	visit = func(e Expr) {
		b, ok := e.(*Binary)
		if !ok {
			return
		}
		if b.Op == OpAnd {
			visit(b.Left)
			visit(b.Right)
			return
		}
		if b.Op != OpEq {
			return
		}
		jp, lit := jsonPathLitPair(b.Left, b.Right)
		if jp == nil || lit.Value.Typ != datum.TypeString || lit.Value.Null {
			return
		}
		if jp.Column.Qualifier != "" && !strings.EqualFold(jp.Column.Qualifier, scan.Binding) {
			return
		}
		if !otherHas(scan, jp.Column.Name) {
			return
		}
		needle := lit.Value.S
		// Soundness: a row matches only when the extracted scalar equals
		// the literal exactly. For string values the raw document contains
		// the text verbatim (when not escape-encoded — the executor guards
		// documents containing backslashes); for numbers/booleans the
		// scalar preserves the raw literal. Composite values serialize
		// compactly, which may differ from the raw spacing, so literals
		// that could match composites ('{'/'[') are excluded, as are
		// literals that would be escape-encoded inside JSON strings.
		if needle == "" || hasControl(needle) ||
			strings.ContainsAny(needle, "\\\"") || strings.ContainsAny(needle, "{[") {
			return
		}
		colIdx := -1
		for i, c := range scan.Columns {
			if strings.EqualFold(c, jp.Column.Name) {
				colIdx = i
			}
		}
		if colIdx < 0 {
			return
		}
		out = append(out, RawPrefilter{
			Column: jp.Column.Name,
			Needle: needle,
			colIdx: colIdx,
		})
	}
	visit(where)
	return out
}

func jsonPathLitPair(l, r Expr) (*JSONPathExpr, *Literal) {
	if jp, ok := l.(*JSONPathExpr); ok {
		if lit, ok := r.(*Literal); ok {
			return jp, lit
		}
	}
	if jp, ok := r.(*JSONPathExpr); ok {
		if lit, ok := l.(*Literal); ok {
			return jp, lit
		}
	}
	return nil, nil
}

func hasControl(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	found := false
	Walk(e, func(n Expr) {
		if _, ok := n.(*Aggregate); ok {
			found = true
		}
	})
	return found
}

// planAggregate binds group keys against the input schema, collects the
// aggregates from projections and ORDER BY, and rebinds post-aggregation
// expressions against the [group keys..., agg values...] intermediate row.
func (e *Engine) planAggregate(plan *PhysicalPlan, stmt *SelectStmt) error {
	plan.GroupBy = stmt.GroupBy
	for _, g := range plan.GroupBy {
		if err := Bind(g, plan.InputSchema); err != nil {
			return err
		}
	}
	// Collect aggregates (dedup by rendered text).
	seen := map[string]int{}
	collect := func(expr Expr) error {
		var firstErr error
		Walk(expr, func(n Expr) {
			a, ok := n.(*Aggregate)
			if !ok {
				return
			}
			key := a.String()
			if idx, dup := seen[key]; dup {
				a.aggIndex = len(plan.GroupBy) + idx
				return
			}
			if a.Arg != nil {
				if err := Bind(a.Arg, plan.InputSchema); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			idx := len(plan.Aggs)
			seen[key] = idx
			a.aggIndex = len(plan.GroupBy) + idx
			plan.Aggs = append(plan.Aggs, a)
		})
		return firstErr
	}
	for _, it := range plan.Items {
		if err := collect(it.Expr); err != nil {
			return err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return err
		}
	}

	// Post-aggregation schema: group keys by their source text (and bare
	// column name when the key is a plain column), then aggregate slots.
	postSchema := RowSchema{}
	for _, g := range plan.GroupBy {
		col := RowCol{Name: g.String(), Type: datum.TypeString}
		if c, ok := g.(*ColumnRef); ok {
			col.Name = c.Name
			col.Qualifier = c.Qualifier
		}
		postSchema.Cols = append(postSchema.Cols, col)
	}
	for _, a := range plan.Aggs {
		postSchema.Cols = append(postSchema.Cols, RowCol{Name: a.String(), Type: datum.TypeFloat64})
	}

	// Rewrite post-aggregation expressions: group-key occurrences (matched
	// by source text, or by bare column name for plain column keys) become
	// keyRefs into the intermediate row; Aggregates keep their aggIndex.
	rewritePost := func(expr Expr) (Expr, error) {
		out := Rewrite(expr, func(n Expr) Expr {
			if _, isAgg := n.(*Aggregate); isAgg {
				return n
			}
			if idx, err := postSchema.Index("", n.String()); err == nil {
				return &keyRef{name: n.String(), index: idx}
			}
			if c, ok := n.(*ColumnRef); ok {
				if idx, err := postSchema.Index(c.Qualifier, c.Name); err == nil {
					return &keyRef{name: c.String(), index: idx}
				}
			}
			return n
		})
		if bad := unresolvedPostRef(out); bad != nil {
			return nil, fmt.Errorf("sql: %q must appear in GROUP BY or inside an aggregate", bad.String())
		}
		return out, nil
	}
	for i := range plan.Items {
		out, err := rewritePost(plan.Items[i].Expr)
		if err != nil {
			return err
		}
		plan.Items[i].Expr = out
	}
	plan.OrderBy = append([]OrderItem(nil), stmt.OrderBy...)
	for i := range plan.OrderBy {
		// An ORDER BY alias refers to a projection item.
		if target := aliasTarget(plan.OrderBy[i].Expr, plan.Items); target != nil {
			plan.OrderBy[i].Expr = target
			continue
		}
		out, err := rewritePost(plan.OrderBy[i].Expr)
		if err != nil {
			return err
		}
		plan.OrderBy[i].Expr = out
	}
	if stmt.Having != nil {
		// HAVING aggregates were collected above; rewrite group-key refs.
		if err := collect(stmt.Having); err != nil {
			return err
		}
		out, err := rewritePost(stmt.Having)
		if err != nil {
			return err
		}
		plan.Having = out
	}
	return nil
}

// unresolvedPostRef finds the first raw column/path reference outside any
// aggregate in a post-aggregation expression — those must have been
// rewritten to keyRefs, so a survivor is an error. Aggregate subtrees are
// skipped because their arguments bind against the pre-aggregation schema.
func unresolvedPostRef(e Expr) Expr {
	switch n := e.(type) {
	case *Aggregate:
		return nil
	case *ColumnRef, *JSONPathExpr, *CachePlaceholder:
		return n
	case *Binary:
		if bad := unresolvedPostRef(n.Left); bad != nil {
			return bad
		}
		return unresolvedPostRef(n.Right)
	case *Not:
		return unresolvedPostRef(n.Inner)
	case *IsNull:
		return unresolvedPostRef(n.Inner)
	case *Like:
		return unresolvedPostRef(n.Inner)
	case *FuncCall:
		for _, a := range n.Args {
			if bad := unresolvedPostRef(a); bad != nil {
				return bad
			}
		}
	}
	return nil
}

// aliasTarget resolves a bare column reference against projection aliases,
// returning the (already bound/rewritten) projected expression.
func aliasTarget(e Expr, items []SelectItem) Expr {
	c, ok := e.(*ColumnRef)
	if !ok || c.Qualifier != "" {
		return nil
	}
	for _, it := range items {
		if strings.EqualFold(it.OutputName(), c.Name) {
			return it.Expr
		}
	}
	return nil
}

func bindOrderItem(o *OrderItem, plan *PhysicalPlan, schema RowSchema) error {
	if target := aliasTarget(o.Expr, plan.Items); target != nil {
		o.Expr = target
		return nil
	}
	return Bind(o.Expr, schema)
}
