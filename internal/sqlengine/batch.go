package sqlengine

import (
	"sync"
	"sync/atomic"

	"repro/internal/datum"
)

// DefaultBatchSize is the number of rows a scan produces per NextBatch call
// unless WithBatchSize overrides it. 1024 rows keeps a batch of a few
// columns inside the L2 cache while amortizing per-call overhead (cursor
// bookkeeping, metric flushes) over a thousand rows.
const DefaultBatchSize = 1024

// RowBatch is a column-major batch of rows: Cols[c][i] is row i's value of
// column c. Batches are recycled through a sync.Pool (GetRowBatch /
// PutRowBatch) so steady-state scans allocate nothing per batch. The
// executor's selection vector (Sel) marks the rows that survived the
// prefilter stage; downstream operators iterate Sel instead of compacting
// the vectors.
type RowBatch struct {
	Cols [][]datum.Datum
	// Sel is scratch space for the executor's selection vector. It is not
	// part of the batch contents a BatchSource fills.
	Sel []int

	// slab is the flat backing array the columns are sliced from.
	slab []datum.Datum
	size int
}

// NewRowBatch builds a batch of the given width (column count) and capacity
// (rows per column). Prefer GetRowBatch for pooled reuse.
func NewRowBatch(width, capacity int) *RowBatch {
	b := &RowBatch{}
	b.reshape(width, capacity)
	return b
}

// reshape resizes the batch to width columns of capacity rows, reusing the
// backing slab when it is large enough.
func (b *RowBatch) reshape(width, capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	need := width * capacity
	if cap(b.slab) < need {
		b.slab = make([]datum.Datum, need)
	}
	slab := b.slab[:need]
	if cap(b.Cols) < width {
		b.Cols = make([][]datum.Datum, width)
	}
	b.Cols = b.Cols[:width]
	for c := 0; c < width; c++ {
		b.Cols[c] = slab[c*capacity : (c+1)*capacity : (c+1)*capacity]
	}
	b.size = capacity
	if cap(b.Sel) < capacity {
		b.Sel = make([]int, 0, capacity)
	}
	b.Sel = b.Sel[:0]
}

// Capacity returns the maximum rows per NextBatch call.
func (b *RowBatch) Capacity() int { return b.size }

// Width returns the column count.
func (b *RowBatch) Width() int { return len(b.Cols) }

// Gather copies row i into dst (a row-major view for expression
// evaluation) and returns it. dst must have capacity >= Width.
func (b *RowBatch) Gather(i int, dst []datum.Datum) []datum.Datum {
	dst = dst[:len(b.Cols)]
	for c := range b.Cols {
		dst[c] = b.Cols[c][i]
	}
	return dst
}

// batchPool recycles RowBatch slabs across partitions and queries.
var batchPool = sync.Pool{New: func() any { return &RowBatch{} }}

// batchOutstanding counts batches checked out of the pool and not yet
// returned. Quiescent engines read 0; the chaos suite asserts the count
// returns to baseline after faulted queries so leaks are caught in CI.
var batchOutstanding atomic.Int64

// OutstandingBatches returns how many pooled RowBatches are checked out.
func OutstandingBatches() int64 { return batchOutstanding.Load() }

// GetRowBatch returns a pooled batch reshaped to width x capacity.
func GetRowBatch(width, capacity int) *RowBatch {
	b := batchPool.Get().(*RowBatch)
	b.reshape(width, capacity)
	batchOutstanding.Add(1)
	return b
}

// PutRowBatch returns a batch to the pool. The caller must not use it (or
// any row gathered from it) afterwards.
func PutRowBatch(b *RowBatch) {
	if b != nil {
		batchOutstanding.Add(-1)
		batchPool.Put(b)
	}
}

// BatchSource streams rows batch-at-a-time. NextBatch fills b.Cols[c][0:n]
// for every column and returns n; n == 0 with a nil error means the source
// is exhausted. Values written into the batch must remain valid after the
// next NextBatch call only if the caller copied them out.
type BatchSource interface {
	NextBatch(b *RowBatch) (int, error)
}

// RowSourceAdapter lifts a legacy row-at-a-time RowSource into a
// BatchSource by buffering rows into the batch. It is the migration shim:
// scan sources that do not (yet) implement BatchSource keep working, just
// without the batch path's allocation savings.
type RowSourceAdapter struct {
	Src RowSource
	// done latches the source's end so a partial batch is not followed by
	// another Next call on an exhausted source.
	done bool
}

// NextBatch implements BatchSource.
func (a *RowSourceAdapter) NextBatch(b *RowBatch) (int, error) {
	if a.done {
		return 0, nil
	}
	n := 0
	width := len(b.Cols)
	for n < b.Capacity() {
		row, err := a.Src.Next()
		if err != nil {
			return n, err
		}
		if row == nil {
			a.done = true
			break
		}
		w := len(row)
		if w > width {
			w = width
		}
		for c := 0; c < w; c++ {
			b.Cols[c][n] = row[c]
		}
		for c := w; c < width; c++ {
			b.Cols[c][n] = datum.NullOf(datum.TypeString)
		}
		n++
	}
	return n, nil
}

// asBatchSource returns the source's native batch interface, or wraps it in
// a RowSourceAdapter. forceAdapter pins the legacy row-at-a-time path even
// for batch-capable sources (WithRowAtATime, equivalence tests).
func asBatchSource(src RowSource, forceAdapter bool) BatchSource {
	if !forceAdapter {
		if bs, ok := src.(BatchSource); ok {
			return bs
		}
	}
	return &RowSourceAdapter{Src: src}
}

// datumArena hands out persistent row slices carved from large chunks, so
// materializing a projected row costs one allocation per ~chunk instead of
// one per row. Rows allocated from an arena stay valid forever (the chunk
// is retained by the rows themselves); the arena is simply a cheaper
// make([]datum.Datum, n).
type datumArena struct {
	chunk []datum.Datum
	off   int
	next  int
}

// Arena chunks double from minArenaChunkDatums to maxArenaChunkDatums
// (~64KiB of datums), so partitions that emit a handful of rows pay a small
// chunk while large scans still amortize to one allocation per ~1k datums.
const (
	minArenaChunkDatums = 32
	maxArenaChunkDatums = 1024
)

func (a *datumArena) alloc(n int) []datum.Datum {
	if n == 0 {
		return nil
	}
	if a.off+n > len(a.chunk) {
		if a.next < minArenaChunkDatums {
			a.next = minArenaChunkDatums
		}
		size := a.next
		if n > size {
			size = n
		}
		if a.next < maxArenaChunkDatums {
			a.next *= 2
		}
		a.chunk = make([]datum.Datum, size)
		a.off = 0
	}
	s := a.chunk[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}
