package sqlengine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// CostModel converts metered work into deterministic simulated time. The
// unit costs are calibrated against wall-clock microbenchmarks of the
// actual substrates on commodity hardware (see cost figures below), so the
// simulated breakdowns keep the shape of real executions while staying
// reproducible on shared CI machines.
//
// Calibration anchors (order-of-magnitude, from this repo's benchmarks):
//   - columnar read decodes ~1 GB/s        → ~1 ns/byte
//   - tree JSON parsing runs ~150 MB/s     → ~6.7 ns/byte
//   - structural-index projection ~600 MB/s→ ~1.7 ns/byte
//   - streaming trie extraction ~500 MB/s  → ~2.0 ns/byte scanned
//   - row compute (expr eval, hashing)     → ~120 ns/row-op
//
// Streaming extraction is charged per byte *scanned*: early exit means the
// tail of a document costs nothing, and the skipped bytes surface separately
// as the parse_bytes_skipped counter rather than as parse cost.
type CostModel struct {
	ReadNsPerByte        float64
	ParseNsPerByteTree   float64 // Jackson-style full parse
	ParseNsPerByteIndex  float64 // Mison-style structural index
	ParseNsPerByteStream float64 // streaming trie extraction (per byte scanned)
	ParseNsPerCall       float64 // fixed per-get_json_object overhead
	ComputeNsPerRowOp    float64
	PlanNsPerExprNode    float64
	// PrefilterNsPerByte rates the Sparser-style raw substring scan
	// (SIMD-class throughput, far cheaper than parsing).
	PrefilterNsPerByte float64
}

// DefaultCostModel returns the calibrated defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		ReadNsPerByte:        1.0,
		ParseNsPerByteTree:   6.7,
		ParseNsPerByteIndex:  1.7,
		ParseNsPerByteStream: 2.0,
		ParseNsPerCall:       80,
		ComputeNsPerRowOp:    120,
		PlanNsPerExprNode:    15000,
		PrefilterNsPerByte:   0.2,
	}
}

// Metrics accumulates all metered work for one query execution. Fields
// updated from parallel partitions use atomics.
type Metrics struct {
	// Read phase.
	BytesRead        atomic.Int64
	RowsScanned      atomic.Int64
	RowGroupsRead    atomic.Int64
	RowGroupsSkipped atomic.Int64

	// Parse phase.
	Parse ParseMeter
	// TreeParser records whether parse bytes were tree-parsed (Jackson) or
	// index-projected (Mison) for costing; StreamParser marks bytes scanned
	// by the streaming trie extractor (charged per byte scanned).
	TreeParser   bool
	StreamParser bool

	// Compute phase: one row-op is one operator processing one row.
	RowOps atomic.Int64

	// Sparser-style prefilter work.
	PrefilterBytes   atomic.Int64
	PrefilterSkipped atomic.Int64

	// Cache interaction (filled in by Maxson's combined scan).
	CacheValuesRead atomic.Int64
	CacheHits       atomic.Int64
	CacheMisses     atomic.Int64

	// Wall clock, set by the executor.
	WallTime time.Duration
	PlanWall time.Duration

	// PlanExprNodes counts expression nodes visited during planning (for
	// the Fig 13 plan-generation-time comparison).
	PlanExprNodes int64

	// QueryID is the flight-recorder query ID (0 when no recorder is
	// active), set by the engine from the query context so scan-layer
	// metrics correlate back to one recorded query.
	QueryID uint64

	// Batches counts scan batches pulled through the vectorized pipeline.
	Batches atomic.Int64

	// scanModes accumulates ScanMode bits from every split's row source, so
	// a finished query can report how its data was actually served (raw
	// parse, combined cache scan, per-split fallback, ...).
	scanModes atomic.Uint32

	// Trace is the root span of the query's trace tree (nil when tracing is
	// off). Span is the span covering this Metrics' scope: the executor
	// gives each scan partition its own Metrics whose Span is that split's
	// span, so row sources can annotate the split they serve (the Value
	// Combiner records combined/fallback mode here) without extra plumbing.
	Trace *obs.Span
	Span  *obs.Span
}

// ScanMode bits mark how splits were served. A query's Metrics ORs together
// the bits of every split, so mixed plans (cached splits plus fresh raw
// appends) surface as multiple bits.
const (
	ScanRaw                 uint32 = 1 << iota // plain raw-table scan
	ScanCacheOnly                              // cache-table-only read (fully cached projection)
	ScanCombined                               // combined raw+cache stitched scan
	ScanCombinedPushdown                       // combined scan with shared row-group mask
	ScanFallbackUncovered                      // fallback parse: split postdates the cache
	ScanFallbackRetired                        // fallback parse: cache generation retired
	ScanFallbackQuarantined                    // fallback parse: cache table quarantined
	ScanShared                                 // served by a shared-scan producer (scanshare demux)
)

// MarkScanMode ORs one ScanMode bit into the metrics (lock-free; called by
// row-source Open paths that may run concurrently per split).
func (m *Metrics) MarkScanMode(bit uint32) {
	for {
		old := m.scanModes.Load()
		if old&bit == bit || m.scanModes.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// ScanModes returns the accumulated ScanMode bits.
func (m *Metrics) ScanModes() uint32 { return m.scanModes.Load() }

// PlanModeString folds the scan-mode bits into the flight recorder's plan
// mode vocabulary: "shared" (rows arrived through a shared-scan demux),
// "cached" (cache-only reads), "combined" (stitched raw+cache),
// "fallback-raw" (cache planned but some split parsed raw), "raw" (no cache
// involvement), or "none" (no scan ran, e.g. EXPLAIN).
func (m *Metrics) PlanModeString() string {
	bits := m.scanModes.Load()
	fallback := bits&(ScanFallbackUncovered|ScanFallbackRetired|ScanFallbackQuarantined) != 0
	switch {
	case bits == 0:
		return "none"
	case bits&ScanShared != 0:
		return "shared"
	case fallback:
		return "fallback-raw"
	case bits&(ScanCombined|ScanCombinedPushdown) != 0:
		return "combined"
	case bits&ScanCacheOnly != 0 && bits&ScanRaw == 0:
		return "cached"
	default:
		return "raw"
	}
}

// addTo merges this Metrics' counters into dst. The executor uses it to
// fold per-partition metrics into the query totals; wall/plan fields and
// trace pointers belong to the root Metrics and are not merged.
func (m *Metrics) addTo(dst *Metrics) {
	dst.BytesRead.Add(m.BytesRead.Load())
	dst.RowsScanned.Add(m.RowsScanned.Load())
	dst.RowGroupsRead.Add(m.RowGroupsRead.Load())
	dst.RowGroupsSkipped.Add(m.RowGroupsSkipped.Load())
	dst.Parse.Docs.Add(m.Parse.Docs.Load())
	dst.Parse.Bytes.Add(m.Parse.Bytes.Load())
	dst.Parse.Skipped.Add(m.Parse.Skipped.Load())
	dst.Parse.Calls.Add(m.Parse.Calls.Load())
	dst.Parse.TreeFallback.Add(m.Parse.TreeFallback.Load())
	dst.RowOps.Add(m.RowOps.Load())
	dst.PrefilterBytes.Add(m.PrefilterBytes.Load())
	dst.PrefilterSkipped.Add(m.PrefilterSkipped.Load())
	dst.CacheValuesRead.Add(m.CacheValuesRead.Load())
	dst.CacheHits.Add(m.CacheHits.Load())
	dst.CacheMisses.Add(m.CacheMisses.Load())
	dst.Batches.Add(m.Batches.Load())
	if bits := m.scanModes.Load(); bits != 0 {
		dst.MarkScanMode(bits)
	}
}

// MergeInto folds this Metrics' counters into dst. Exported for shared-scan
// producers: the producer meters the single underlying pass into its own
// Metrics, and exactly one consumer query folds that work into its totals so
// engine-lifetime counters see the scan once, not once per participant.
func (m *Metrics) MergeInto(dst *Metrics) { m.addTo(dst) }

// String renders the counters as one human-readable line — the single
// rendering path shared by cmd/maxson-sql and EXPLAIN ANALYZE.
func (m *Metrics) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("read %dB in %d rows (%d row-groups, %d skipped)",
		m.BytesRead.Load(), m.RowsScanned.Load(), m.RowGroupsRead.Load(), m.RowGroupsSkipped.Load()))
	pc := m.Parse.Snapshot()
	if pc.Skipped > 0 {
		parts = append(parts, fmt.Sprintf("parsed %d docs / %dB / %d calls (%dB skipped)",
			pc.Docs, pc.Bytes, pc.Calls, pc.Skipped))
	} else {
		parts = append(parts, fmt.Sprintf("parsed %d docs / %dB / %d calls", pc.Docs, pc.Bytes, pc.Calls))
	}
	parts = append(parts, fmt.Sprintf("%d row-ops", m.RowOps.Load()))
	if n := m.CacheValuesRead.Load(); n > 0 || m.CacheMisses.Load() > 0 {
		parts = append(parts, fmt.Sprintf("cache %d values (%d misses)", n, m.CacheMisses.Load()))
	}
	if n := m.PrefilterSkipped.Load(); n > 0 {
		parts = append(parts, fmt.Sprintf("prefilter skipped %d", n))
	}
	if pc.TreeFallback > 0 {
		parts = append(parts, fmt.Sprintf("tree-fallback %d", pc.TreeFallback))
	}
	return strings.Join(parts, "; ")
}

// PhaseBreakdown is the Read/Parse/Compute split of simulated time used by
// Fig 3 and Fig 12.
type PhaseBreakdown struct {
	Read    time.Duration
	Parse   time.Duration
	Compute time.Duration
}

// Total returns the summed phase time.
func (p PhaseBreakdown) Total() time.Duration { return p.Read + p.Parse + p.Compute }

// String renders the split as "read R + parse P + compute C = T".
func (p PhaseBreakdown) String() string {
	return fmt.Sprintf("read %v + parse %v + compute %v = %v", p.Read, p.Parse, p.Compute, p.Total())
}

// Breakdown converts the metered counters into simulated phase times. Parse
// cost is charged per byte the chosen backend actually scanned — for the
// streaming extractor the early-exited tail (Parse.Skipped) is free.
func (m *Metrics) Breakdown(cm CostModel) PhaseBreakdown {
	perByte := cm.ParseNsPerByteIndex
	switch {
	case m.TreeParser:
		perByte = cm.ParseNsPerByteTree
	case m.StreamParser:
		perByte = cm.ParseNsPerByteStream
	}
	pc := m.Parse.Snapshot()
	return PhaseBreakdown{
		Read: time.Duration(float64(m.BytesRead.Load()) * cm.ReadNsPerByte),
		Parse: time.Duration(float64(pc.Bytes)*perByte + float64(pc.Calls)*cm.ParseNsPerCall +
			float64(m.PrefilterBytes.Load())*cm.PrefilterNsPerByte),
		Compute: time.Duration(float64(m.RowOps.Load()) * cm.ComputeNsPerRowOp),
	}
}

// SimulatedTime is the total simulated execution time.
func (m *Metrics) SimulatedTime(cm CostModel) time.Duration {
	return m.Breakdown(cm).Total()
}

// SimulatedPlanTime converts plan-phase work into simulated time.
func (m *Metrics) SimulatedPlanTime(cm CostModel) time.Duration {
	return time.Duration(float64(m.PlanExprNodes) * cm.PlanNsPerExprNode)
}
