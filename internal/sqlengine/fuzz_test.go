package sqlengine

import "testing"

// FuzzParseSQL exercises the SQL lexer+parser against arbitrary inputs: it
// must never panic, and accepted statements must survive a re-parse of
// their rendered expression texts where applicable.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT 1 FROM t",
		"SELECT a, b c FROM db.t WHERE x = 'y' ORDER BY a DESC LIMIT 3",
		"SELECT get_json_object(doc, '$.a.b[0]') v FROM t WHERE v > 10",
		"SELECT COUNT(*), SUM(x) FROM t GROUP BY k HAVING COUNT(*) > 1",
		"SELECT * FROM a JOIN b ON a.x = b.y",
		"SELECT x FROM t WHERE a BETWEEN 1 AND 2 AND b IN ('p','q') AND c LIKE '%z_'",
		"SELECT DISTINCT x FROM t WHERE NOT (a IS NULL) OR b IS NOT NULL",
		"SELECT -x + 2 * (y - 1) / 3 % 4 FROM t",
		"SELECT '" + "it''s" + "' FROM t",
		"SELECT", "FROM", "(((", "''''", "SELECT a FROM t WHERE",
		"select a from t -- comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		// Accepted statements render without panicking and keep their
		// structural invariants.
		for _, it := range stmt.Items {
			if !it.Star {
				_ = it.Expr.String()
				_ = it.OutputName()
			}
		}
		if stmt.Where != nil {
			_ = stmt.Where.String()
		}
		_ = stmt.JSONPaths()
		if stmt.Limit < -1 {
			t.Fatalf("negative limit: %d", stmt.Limit)
		}
	})
}
