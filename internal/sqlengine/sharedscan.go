package sqlengine

import "context"

// Shared-scan integration point. The engine itself knows nothing about how
// concurrent queries get batched into one pass — that lives in
// internal/scanshare — it only offers a pre-execution hook where an attached
// ScanSharer may rewrite the plan's scan to consume a shared producer.

// SharedScanHandle is a query's membership in a shared scan. The engine
// calls Release exactly once when the query finishes (success, error, or
// cancellation): the participant detaches from the producer and returns any
// still-buffered pooled batches, so one query's exit never strands its
// siblings or leaks RowBatches.
type SharedScanHandle interface {
	Release()
}

// ScanSharer batches compatible concurrent scans. Attach is called after
// planning (and any PlanModifier) and before execution; it may block briefly
// (the admission window) while compatible queries coalesce. A (nil, nil)
// return means "run unshared" — the plan must then be untouched. A non-nil
// handle means the plan's scan now reads from the shared producer and the
// engine must Release the handle when the query completes.
type ScanSharer interface {
	Attach(ctx context.Context, e *Engine, plan *PhysicalPlan) (SharedScanHandle, error)
}

// WithScanShare attaches a shared-scan scheduler to the engine.
func WithScanShare(s ScanSharer) EngineOption {
	return func(e *Engine) { e.scanShare = s }
}

// SetScanShare installs (or, with nil, removes) the engine's shared-scan
// scheduler. Call before serving queries.
func (e *Engine) SetScanShare(s ScanSharer) { e.scanShare = s }

// BatchSize returns the rows-per-batch of the vectorized pipeline; shared
// producers size their demux batches to it so consumer-side copies fit the
// executor's pooled batches.
func (e *Engine) BatchSize() int { return e.batchSize }

// ScanFactory returns the engine's default scan-source factory for scan —
// the same warehouse-backed splits an unshared query would read. Shared-scan
// producers use it to run the single underlying pass.
func (e *Engine) ScanFactory(scan *ScanNode) ScanSourceFactory {
	return &tableSource{e: e, scan: scan}
}
