package sqlengine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// ExplainAnalyze executes sql with tracing enabled and renders an
// EXPLAIN ANALYZE-style annotated operator tree: per-operator rows, bytes,
// parse calls, cache hits, and simulated Read/Parse/Compute times. The
// result set and metrics of the (actually executed) query are returned
// alongside the rendering.
func (e *Engine) ExplainAnalyze(sql string) (string, *ResultSet, *Metrics, error) {
	return e.ExplainAnalyzeCtx(context.Background(), sql)
}

// ExplainAnalyzeCtx is ExplainAnalyze under a context: the traced
// execution honors cancellation and the engine query timeout exactly like
// QueryCtx.
func (e *Engine) ExplainAnalyzeCtx(ctx context.Context, sql string) (string, *ResultSet, *Metrics, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return "", nil, nil, err
	}
	return e.ExplainAnalyzeStmtCtx(ctx, stmt)
}

// ExplainAnalyzeStmt is ExplainAnalyze over a parsed statement.
func (e *Engine) ExplainAnalyzeStmt(stmt *SelectStmt) (string, *ResultSet, *Metrics, error) {
	return e.ExplainAnalyzeStmtCtx(context.Background(), stmt)
}

// ExplainAnalyzeStmtCtx is ExplainAnalyzeCtx over a parsed statement.
func (e *Engine) ExplainAnalyzeStmtCtx(ctx context.Context, stmt *SelectStmt) (string, *ResultSet, *Metrics, error) {
	plan, rs, m, err := e.queryStmt(ctx, stmt, true)
	if err != nil {
		return "", nil, nil, err
	}
	return RenderExplainAnalyze(plan, m, e.cost), rs, m, nil
}

// explainLine is one operator row: the plan text plus its annotation.
type explainLine struct {
	op   string
	note string
}

// RenderExplainAnalyze draws the annotated operator tree for an executed
// plan. Annotations come from the trace recorded in m (m.Trace may be nil,
// e.g. for an EXPLAIN-only statement — then only the plan shape prints).
func RenderExplainAnalyze(plan *PhysicalPlan, m *Metrics, cm CostModel) string {
	trace := m.Trace
	span := func(name string) *obs.Span {
		if trace == nil {
			return nil
		}
		for _, c := range trace.Children() {
			if c.Name == name || strings.HasPrefix(c.Name, name+" ") {
				return c
			}
		}
		return nil
	}
	attr := func(s *obs.Span, keys ...string) string {
		if s == nil {
			return ""
		}
		var parts []string
		for _, k := range keys {
			if v := s.Attr(k); v != "" {
				parts = append(parts, k+"="+v)
			}
		}
		return strings.Join(parts, " ")
	}

	var lines []explainLine
	add := func(op, note string) { lines = append(lines, explainLine{op, note}) }

	if plan.Limit >= 0 {
		add(fmt.Sprintf("Limit %d", plan.Limit), attr(span("limit"), "out"))
	}
	for i, o := range plan.OrderBy {
		dir := "ASC"
		if o.Desc {
			dir = "DESC"
		}
		note := ""
		if i == 0 {
			note = attr(span("sort"), "rows", "row-ops")
		}
		add(fmt.Sprintf("Sort %s %s", o.Expr.String(), dir), note)
	}
	if plan.Distinct {
		add("Distinct", attr(span("distinct"), "out", "row-ops"))
	}
	if plan.Having != nil {
		add("Having "+plan.Having.String(), "")
	}
	scanSpan := span("scan")
	if plan.aggregate {
		op := "Aggregate ["
		for i, g := range plan.GroupBy {
			if i > 0 {
				op += ", "
			}
			op += g.String()
		}
		op += "] aggs=["
		for i, a := range plan.Aggs {
			if i > 0 {
				op += ", "
			}
			op += a.String()
		}
		op += "]"
		add(op, attr(span("aggregate"), "groups", "row-ops"))
	}
	op := "Project ["
	for i, it := range plan.Items {
		if i > 0 {
			op += ", "
		}
		if it.Star {
			op += "*"
		} else {
			op += it.OutputName()
		}
	}
	add(op+"]", "")
	if plan.Filter != nil {
		add("Filter "+plan.Filter.String(), attr(scanSpan, "out", "prefilter-skipped"))
	}
	if plan.Join != nil {
		add(fmt.Sprintf("HashJoin build=%s.%s", plan.Join.Build.DB, plan.Join.Build.Table),
			attr(span("join-build"), "rows", "bytes", "parse-docs"))
	}

	scanOp := fmt.Sprintf("Scan %s.%s cols=%v", plan.Scan.DB, plan.Scan.Table, plan.Scan.Columns)
	if plan.Scan.SARG != nil {
		scanOp += " sarg=(" + plan.Scan.SARG.String() + ")"
	}
	if len(plan.Scan.PreFilters) > 0 {
		scanOp += " prefilters=["
		for i, pf := range plan.Scan.PreFilters {
			if i > 0 {
				scanOp += ", "
			}
			scanOp += pf.Column + "~" + pf.Needle
		}
		scanOp += "]"
	}
	add(scanOp, attr(scanSpan,
		"splits", "rows", "bytes", "parse-docs", "parse-calls", "parse-bytes-skipped",
		"parse-tree-fallback", "rowgroups", "rowgroups-skipped", "cache-values"))

	// Split detail lines nest under the scan.
	var splits []*obs.Span
	if scanSpan != nil {
		splits = scanSpan.Children()
	}
	for i, sp := range splits {
		guide := "├─"
		if i == len(splits)-1 {
			guide = "└─"
		}
		src := sp.Attr("source")
		if src == "" {
			src = "?"
		}
		add(fmt.Sprintf("  %s %s: %s", guide, sp.Name, src),
			attr(sp, "rows", "out", "bytes", "parse-docs", "cache-values", "rowgroups-skipped"))
	}

	// Align annotations in one column after the widest operator text.
	width := 0
	for _, l := range lines {
		if len(l.op) > width {
			width = len(l.op)
		}
	}
	var sb strings.Builder
	sb.WriteString("EXPLAIN ANALYZE\n")
	for _, l := range lines {
		if l.note == "" {
			sb.WriteString(l.op)
		} else {
			fmt.Fprintf(&sb, "%-*s  | %s", width, l.op, l.note)
		}
		sb.WriteByte('\n')
	}

	// Scan-phase simulated time (when traced) and query totals.
	if scanSpan != nil {
		if sim := scanSpan.Attr("simulated"); sim != "" {
			fmt.Fprintf(&sb, "scan simulated: %s\n", sim)
		}
	}
	fmt.Fprintf(&sb, "totals:    %s\n", m.String())
	fmt.Fprintf(&sb, "simulated: %s\n", m.Breakdown(cm).String())
	fmt.Fprintf(&sb, "plan:      %d expr nodes, %v simulated\n",
		m.PlanExprNodes, m.SimulatedPlanTime(cm))
	return sb.String()
}
