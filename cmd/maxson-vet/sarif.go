package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"repro/internal/lint"
)

// SARIF 2.1.0 output, the minimal subset CI code-scanning upload consumes:
// one run, the analyzer suite as the tool's rules, one result per
// diagnostic with a physical location relative to the module root.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the result as a SARIF 2.1.0 log. root is the module
// root diagnostics' file paths are made relative to (the repo-relative
// URIs code-scanning expects).
func writeSARIF(w io.Writer, root string, result *lint.Result) error {
	rules := make([]sarifRule, 0, len(lint.All())+1)
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               lint.DirectiveAnalyzer,
		ShortDescription: sarifMessage{Text: "malformed, unknown, or unused //lint:ignore directives"},
	})

	results := make([]sarifResult, 0, len(result.Diagnostics))
	for _, d := range result.Diagnostics {
		uri := d.File
		if rel, err := filepath.Rel(root, d.File); err == nil {
			uri = filepath.ToSlash(rel)
		}
		line := d.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; directive diags may lack cols
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: line, StartColumn: d.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "maxson-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
