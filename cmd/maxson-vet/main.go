// Command maxson-vet runs the repository's project-invariant analyzers
// (internal/lint) over Go packages: pooled RowBatch lifecycle, arena
// escape discipline, metric naming, error handling on parse surfaces,
// lock-held call hygiene, and the interprocedural concurrency suite
// (ctxflow, goroutineowner, lockorder) over the module call graph.
//
// Usage:
//
//	maxson-vet [-json|-sarif] [-stats] [-run ctxflow,lockorder] [-C dir] [patterns...]
//
// Patterns default to ./... relative to the module root. -sarif emits a
// SARIF 2.1.0 log for CI code-scanning upload; -stats prints per-analyzer
// finding/ignore counts to stderr. Exit status: 0 when clean, 1 when any
// diagnostic is reported, 2 when loading or type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("maxson-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	stats := fs.Bool("stats", false, "print per-analyzer finding/ignore counts to stderr")
	list := fs.Bool("list", false, "list analyzers and exit")
	sel := fs.String("run", "", "comma-separated analyzer names (default: all)")
	dir := fs.String("C", ".", "module root directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "maxson-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *sel != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*sel, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns, nil)
	if err != nil {
		fmt.Fprintln(stderr, "maxson-vet:", err)
		return 2
	}
	result := lint.Run(pkgs, analyzers)

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintln(stderr, "maxson-vet:", err)
			return 2
		}
	case *sarifOut:
		root, err := filepath.Abs(*dir)
		if err != nil {
			root = *dir
		}
		if err := writeSARIF(stdout, root, result); err != nil {
			fmt.Fprintln(stderr, "maxson-vet:", err)
			return 2
		}
	default:
		for _, d := range result.Diagnostics {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if *stats {
		fmt.Fprintf(stderr, "%-14s %8s %8s\n", "analyzer", "findings", "ignored")
		for _, s := range result.Stats {
			fmt.Fprintf(stderr, "%-14s %8d %8d\n", s.Analyzer, s.Findings, s.Ignored)
		}
	}
	if result.Count > 0 {
		return 1
	}
	return 0
}
