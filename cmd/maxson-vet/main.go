// Command maxson-vet runs the repository's project-invariant analyzers
// (internal/lint) over Go packages: pooled RowBatch lifecycle, arena
// escape discipline, metric naming, error handling on parse surfaces, and
// lock-held call hygiene.
//
// Usage:
//
//	maxson-vet [-json] [-run poolbalance,metricname] [-C dir] [patterns...]
//
// Patterns default to ./... relative to the module root. Exit status: 0
// when clean, 1 when any diagnostic is reported, 2 when loading or
// type-checking fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("maxson-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	sel := fs.String("run", "", "comma-separated analyzer names (default: all)")
	dir := fs.String("C", ".", "module root directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *sel != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*sel, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns, nil)
	if err != nil {
		fmt.Fprintln(stderr, "maxson-vet:", err)
		return 2
	}
	result := lint.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(result); err != nil {
			fmt.Fprintln(stderr, "maxson-vet:", err)
			return 2
		}
	} else {
		for _, d := range result.Diagnostics {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if result.Count > 0 {
		return 1
	}
	return 0
}
