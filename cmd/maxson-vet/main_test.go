package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for driver tests. files maps
// module-relative paths to contents; a go.mod is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.24\n"
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// errSource is a stand-in for the repository's parse surface: the analyzers
// match packages by import-path suffix, so tmpmod/internal/sjson counts as
// an error source without importing the real module.
const errSource = `package sjson

import "errors"

func Parse(s string) error {
	if s == "" {
		return errors.New("empty")
	}
	return nil
}
`

func TestDriverCleanTree(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"ok/ok.go": `package ok

import "tmpmod/internal/sjson"

func Use(s string) error { return sjson.Parse(s) }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	var res struct {
		Diagnostics []map[string]any `json:"diagnostics"`
		Count       int              `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Count != 0 || res.Diagnostics == nil || len(res.Diagnostics) != 0 {
		t.Fatalf("clean tree reported %d diagnostics: %s", res.Count, stdout.String())
	}
	if !strings.Contains(stdout.String(), `"diagnostics": [`) {
		t.Fatalf("diagnostics must serialize as an array, not null: %s", stdout.String())
	}
}

func TestDriverFindings(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var res struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Count != 1 || len(res.Diagnostics) != 1 {
		t.Fatalf("want exactly one finding, got %d: %s", res.Count, stdout.String())
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "errdiscard" || !strings.HasSuffix(d.File, "bad.go") ||
		d.Line != 6 || d.Col == 0 || !strings.Contains(d.Message, "bare call") {
		t.Fatalf("unexpected diagnostic shape: %+v", d)
	}
}

func TestDriverLoadError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"broken/broken.go": `package broken

func f() { undefinedIdent() }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "maxson-vet:") {
		t.Fatalf("load error not reported on stderr: %q", stderr.String())
	}
}

func TestDriverTextOutputAndRunSelection(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-run", "errdiscard", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.Contains(line, "bad.go:6:") || !strings.HasSuffix(line, "(errdiscard)") {
		t.Fatalf("unexpected text rendering: %q", line)
	}

	stdout.Reset()
	if code := run([]string{"-C", root, "-run", "metricname", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-run metricname exit = %d, want 0 (errdiscard finding filtered out)", code)
	}

	stderr.Reset()
	if code := run([]string{"-run", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nosuch exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Fatalf("unknown analyzer not reported: %q", stderr.String())
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{
		"arenaescape", "ctxflow", "errdiscard", "goroutineowner",
		"lockheld", "lockorder", "metricname", "poolbalance",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestDriverRunInterprocedural selects the call-graph-backed analyzers by
// name over a module that violates ctxflow and goroutineowner.
func TestDriverRunInterprocedural(t *testing.T) {
	root := writeModule(t, map[string]string{
		"svc/svc.go": `package svc

import "context"

func handle(ctx context.Context) {
	_ = ctx
	_ = context.Background()
}

func spawn(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-run", "ctxflow,goroutineowner,lockorder", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(ctxflow)") || !strings.Contains(out, "already receives a context.Context") {
		t.Fatalf("ctxflow finding missing:\n%s", out)
	}
	if !strings.Contains(out, "(goroutineowner)") || !strings.Contains(out, "no termination signal") {
		t.Fatalf("goroutineowner finding missing:\n%s", out)
	}
	if strings.Contains(out, "(lockorder)") {
		t.Fatalf("unexpected lockorder finding:\n%s", out)
	}
}

// TestDriverSARIF pins the SARIF 2.1.0 shape CI uploads: tool name, rules,
// and one result with a module-relative location.
func TestDriverSARIF(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-sarif", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif") || len(log.Runs) != 1 {
		t.Fatalf("bad SARIF envelope: version=%q schema=%q runs=%d", log.Version, log.Schema, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "maxson-vet" {
		t.Fatalf("tool name = %q", run0.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"errdiscard", "ctxflow", "goroutineowner", "lockorder", "lintdirective"} {
		if !ruleIDs[want] {
			t.Fatalf("rules missing %q: %v", want, ruleIDs)
		}
	}
	if len(run0.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(run0.Results))
	}
	res := run0.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "errdiscard" || res.Level != "warning" ||
		loc.ArtifactLocation.URI != "bad/bad.go" || loc.Region.StartLine != 6 {
		t.Fatalf("unexpected result shape: %+v", res)
	}

	stderr.Reset()
	if code := run([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 2 ||
		!strings.Contains(stderr.String(), "mutually exclusive") {
		t.Fatalf("-json -sarif: exit=%d stderr=%q, want 2 + mutual-exclusion error", code, stderr.String())
	}
}

// TestDriverStats checks the per-analyzer finding/ignore table on stderr.
func TestDriverStats(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}

func Excused() {
	//lint:ignore errdiscard probing parser error behavior on purpose
	sjson.Parse("y")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-stats", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var errRow string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "errdiscard") {
			errRow = line
		}
	}
	if errRow == "" {
		t.Fatalf("-stats table missing errdiscard row:\n%s", stderr.String())
	}
	fields := strings.Fields(errRow)
	if len(fields) != 3 || fields[1] != "1" || fields[2] != "1" {
		t.Fatalf("errdiscard stats row = %q, want 1 finding and 1 ignored", errRow)
	}
	if !strings.Contains(stderr.String(), "analyzer") || !strings.Contains(stderr.String(), "ignored") {
		t.Fatalf("-stats header missing:\n%s", stderr.String())
	}
}
