package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for driver tests. files maps
// module-relative paths to contents; a go.mod is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.24\n"
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// errSource is a stand-in for the repository's parse surface: the analyzers
// match packages by import-path suffix, so tmpmod/internal/sjson counts as
// an error source without importing the real module.
const errSource = `package sjson

import "errors"

func Parse(s string) error {
	if s == "" {
		return errors.New("empty")
	}
	return nil
}
`

func TestDriverCleanTree(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"ok/ok.go": `package ok

import "tmpmod/internal/sjson"

func Use(s string) error { return sjson.Parse(s) }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	var res struct {
		Diagnostics []map[string]any `json:"diagnostics"`
		Count       int              `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Count != 0 || res.Diagnostics == nil || len(res.Diagnostics) != 0 {
		t.Fatalf("clean tree reported %d diagnostics: %s", res.Count, stdout.String())
	}
	if !strings.Contains(stdout.String(), `"diagnostics": [`) {
		t.Fatalf("diagnostics must serialize as an array, not null: %s", stdout.String())
	}
}

func TestDriverFindings(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var res struct {
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Count != 1 || len(res.Diagnostics) != 1 {
		t.Fatalf("want exactly one finding, got %d: %s", res.Count, stdout.String())
	}
	d := res.Diagnostics[0]
	if d.Analyzer != "errdiscard" || !strings.HasSuffix(d.File, "bad.go") ||
		d.Line != 6 || d.Col == 0 || !strings.Contains(d.Message, "bare call") {
		t.Fatalf("unexpected diagnostic shape: %+v", d)
	}
}

func TestDriverLoadError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"broken/broken.go": `package broken

func f() { undefinedIdent() }
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "maxson-vet:") {
		t.Fatalf("load error not reported on stderr: %q", stderr.String())
	}
}

func TestDriverTextOutputAndRunSelection(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/sjson/sjson.go": errSource,
		"bad/bad.go": `package bad

import "tmpmod/internal/sjson"

func Leak() {
	sjson.Parse("x")
}
`,
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "-run", "errdiscard", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.Contains(line, "bad.go:6:") || !strings.HasSuffix(line, "(errdiscard)") {
		t.Fatalf("unexpected text rendering: %q", line)
	}

	stdout.Reset()
	if code := run([]string{"-C", root, "-run", "metricname", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-run metricname exit = %d, want 0 (errdiscard finding filtered out)", code)
	}

	stderr.Reset()
	if code := run([]string{"-run", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-run nosuch exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Fatalf("unknown analyzer not reported: %q", stderr.String())
	}
}

func TestDriverList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"arenaescape", "errdiscard", "lockheld", "metricname", "poolbalance"} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
