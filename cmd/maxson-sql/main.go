// Command maxson-sql runs SQL against a demo warehouse (the paper's Fig 1
// sale-logs table), with or without Maxson's JSONPath cache, and prints the
// result plus the read/parse/compute accounting so the caching effect is
// visible per query.
//
// Usage:
//
//	maxson-sql "SELECT get_json_object(sale_logs, '$.turnover') FROM mydb.T LIMIT 3"
//	maxson-sql -maxson "SELECT ..."   # pre-caches all JSONPaths first
//	maxson-sql -plan "SELECT ..."     # print the physical plan only
//	maxson-sql -explain "SELECT ..."  # EXPLAIN ANALYZE: annotated operator tree
//	maxson-sql -trace-out q.json "SELECT ..."  # Chrome trace-event timeline
//	maxson-sql -debug-addr :6060 "SELECT ..."  # live /metrics, /debug/queries, pprof
//
// -trace-out writes the query's span tree in Chrome trace-event format;
// load the file at chrome://tracing or https://ui.perfetto.dev to see the
// plan/scan/split timeline.
//
// With -explain -maxson the query is replayed as a recurring daily workload,
// a real midnight cycle runs (train, predict, score, populate), and the
// annotated tree prints before and after — the cached run shows combined
// scans and cache reads where the first showed raw parsing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pathkey"
)

func main() {
	useMaxson := flag.Bool("maxson", false, "pre-cache the demo table's JSONPaths before running")
	planOnly := flag.Bool("plan", false, "print the physical plan instead of executing")
	explain := flag.Bool("explain", false, "print an EXPLAIN ANALYZE annotated operator tree")
	replayDaysFlag := flag.Int("replay-days", 15, "with -explain -maxson: days of recurring history to replay before the cycle")
	days := flag.Int("days", 31, "days of demo data to load")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for queries and cycles (0 = none)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline of the query to this file")
	debugAddr := flag.String("debug-addr", "", "serve the diagnostics server (metrics, flight recorder, pprof) on this address")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: maxson-sql [-maxson] [-plan] [-explain] \"SELECT ...\"")
	}
	sql := flag.Arg(0)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sys := maxson.NewSystem(maxson.SystemConfig{DefaultDB: "mydb"})
	if *debugAddr != "" {
		ds := sys.NewDebugServer()
		addr, err := ds.Start(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- debug server on http://%s (/metrics, /debug/queries, /debug/pprof)\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(sctx)
		}()
	}
	wh := sys.Warehouse()
	wh.CreateDatabase("mydb")
	schema := maxson.Schema{Columns: []maxson.Column{
		{Name: "mall_id", Type: maxson.TypeString},
		{Name: "date", Type: maxson.TypeString},
		{Name: "sale_logs", Type: maxson.TypeString},
	}}
	if err := wh.CreateTable("mydb", "T", schema); err != nil {
		log.Fatal(err)
	}
	items := []string{"apple", "watermelon", "banana", "orange", "grape"}
	for day := 1; day <= *days; day++ {
		var rows [][]maxson.Datum
		for i, item := range items {
			rows = append(rows, []maxson.Datum{
				maxson.Str("0001"),
				maxson.Str(fmt.Sprintf("201901%02d", day)),
				maxson.Str(fmt.Sprintf(
					`{"item_id":%d,"item_name":"%s","sale_count":%d,"turnover":%d,"price":%d}`,
					i+1, item, (day+i)%15+1, (day*3+i*17)%150+10, i+2)),
			})
		}
		if _, err := wh.AppendRows("mydb", "T", rows); err != nil {
			log.Fatal(err)
		}
	}
	sys.AdvanceClock(24 * time.Hour)

	if *explain {
		out, _, met, err := sys.ExplainCtx(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		if !*useMaxson {
			fmt.Print(out)
			exportTrace(*traceOut, met)
			return
		}
		fmt.Println("-- before midnight cycle")
		fmt.Print(out)

		// Replay the query as a recurring daily workload so the collector
		// accumulates history, then run the real pipeline: train the
		// predictor, predict MPJPs, score them, populate the cache.
		for day := 0; day < *replayDaysFlag; day++ {
			sys.AdvanceClock(10 * time.Hour) // queries run mid-day
			for rep := 0; rep < 2; rep++ {
				if _, _, err := sys.QueryCtx(ctx, sql); err != nil {
					log.Fatal(err)
				}
			}
			sys.AdvanceToMidnight()
		}
		report, err := sys.RunMidnightCycleCtx(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- midnight cycle: %d candidates, %d cached (%s); stages: %s\n",
			report.CandidateMPJP, report.Cache.PathsCached,
			humanBytes(sys.CacheBytes()), report.StageSummary())

		after, _, met, err := sys.ExplainCtx(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n-- after midnight cycle")
		fmt.Print(after)
		exportTrace(*traceOut, met)
		return
	}

	if *useMaxson {
		var profiles []*core.PathProfile
		for _, p := range []string{"$.item_id", "$.item_name", "$.sale_count", "$.turnover", "$.price"} {
			profiles = append(profiles, &core.PathProfile{
				Key:             pathkey.Key{DB: "mydb", Table: "T", Column: "sale_logs", Path: p},
				TotalValueBytes: 1,
			})
		}
		if _, err := sys.Core().CacheSelected(profiles); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- maxson: %d JSONPaths pre-cached (%d bytes)\n\n", len(profiles), sys.CacheBytes())
	}

	if *planOnly {
		plan, _, err := sys.Engine().PlanOnly(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan.String())
		return
	}

	rs, m, err := sys.QueryCtx(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rs.String())
	fmt.Printf("\n-- %d rows; %s\n", len(rs.Rows), m)
	fmt.Printf("-- simulated: %s\n", m.Breakdown(sys.Engine().CostModel()))
	if n := m.CacheValuesRead.Load(); n > 0 {
		fmt.Printf("-- served %d values from the JSONPath cache\n", n)
	}
	if *traceOut != "" {
		// The plain query path runs untraced; replay once with tracing on so
		// the exported timeline covers a real execution of the same plan.
		_, _, tm, err := sys.ExplainCtx(ctx, sql)
		if err != nil {
			log.Fatal(err)
		}
		exportTrace(*traceOut, tm)
	}
}

// exportTrace writes a traced query's span tree as a Chrome trace-event
// JSON file, loadable at chrome://tracing or ui.perfetto.dev. No-op when no
// path was requested; fatal when the query carried no trace.
func exportTrace(path string, m *maxson.Metrics) {
	if path == "" {
		return
	}
	if m == nil || m.Trace == nil {
		log.Fatal("trace-out: query was not traced (no span tree recorded)")
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.WriteTraceEvents(f, m.Trace); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", path)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
