// Command maxson-serve runs Maxson as a long-lived concurrent SQL server:
// an HTTP/JSON frontend (POST /v1/query, GET /v1/sessions) over the cached
// query path, with admission control (bounded worker pool + bounded wait
// queue, overflow shed with 429 + Retry-After), per-query deadlines,
// session limits with idle reaping, panic-isolated handlers, online
// cache-maintenance cycles running concurrently with traffic, and graceful
// drain on SIGTERM/SIGINT (stop admitting → /readyz false → drain in-flight
// → flush state via SaveState).
//
// Usage:
//
//	maxson-serve -addr 127.0.0.1:8080
//	maxson-serve -addr :8080 -workers 8 -queue 64 -cycle-every 30s
//	maxson-serve -addr :8080 -debug-addr 127.0.0.1:6060   # separate debug listener
//
// The server seeds an example warehouse (the maxson-daily tables and query
// mix) and runs one warm-up midnight cycle before accepting traffic, so
// /v1/query serves from cache immediately:
//
//	curl -s localhost:8080/v1/query -d '{"sql":"SELECT COUNT(*) c FROM prod.sales"}'
//
// The diagnostics surface (/metrics, /metrics.json, /healthz, /readyz,
// /debug/queries incl. ?state=active, /debug/cycle, /debug/pprof) is
// mounted on the serving listener, and additionally on -debug-addr when
// given.
//
// Exit codes: 0 clean drain, 1 setup failure, 2 drain failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "serving address")
	debugAddr := flag.String("debug-addr", "", "also serve the diagnostics surface on this separate address")
	workers := flag.Int("workers", 4, "worker pool size (max concurrently executing queries)")
	queue := flag.Int("queue", 0, "wait-queue depth (0 = 4x workers); overflow sheds with 429")
	queryTimeout := flag.Duration("query-timeout", 30*time.Second, "per-query deadline (queue wait included)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain bound on shutdown")
	sessionIdle := flag.Duration("session-idle", 5*time.Minute, "idle horizon after which a session is reaped")
	cycleEvery := flag.Duration("cycle-every", time.Minute, "online cache-maintenance cycle interval (0 disables)")
	shareWindow := flag.Duration("scan-share-window", 2*time.Millisecond, "shared-scan admission window (0 disables coalescing)")
	budgetMB := flag.Int64("budget-mb", 64, "cache budget in MiB")
	demoDays := flag.Int("demo-days", 10, "example-warehouse days to seed before serving")
	rowsPerDay := flag.Int("rows", 200, "rows loaded per table per seeded day")
	verbose := flag.Bool("v", false, "structured server/cycle logs on stderr")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if err := run(ctx, logger, *addr, *debugAddr, *workers, *queue, *queryTimeout,
		*drainTimeout, *sessionIdle, *cycleEvery, *shareWindow, *budgetMB, *demoDays, *rowsPerDay); err != nil {
		fmt.Fprintln(os.Stderr, "maxson-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, logger *slog.Logger, addr, debugAddr string,
	workers, queue int, queryTimeout, drainTimeout, sessionIdle, cycleEvery, shareWindow time.Duration,
	budgetMB int64, demoDays, rowsPerDay int) error {
	sys := maxson.NewSystem(maxson.SystemConfig{
		DefaultDB:        "prod",
		CacheBudgetBytes: budgetMB << 20,
		Logger:           logger,
		ScanShareWindow:  shareWindow,
	})
	if err := seedDemoWarehouse(ctx, sys, demoDays, rowsPerDay); err != nil {
		return fmt.Errorf("seed example warehouse: %w", err)
	}

	ds := sys.NewDebugServer()
	srv := serve.New(sys, serve.Config{
		Workers:      workers,
		QueueDepth:   queue,
		QueryTimeout: queryTimeout,
		DrainTimeout: drainTimeout,
		SessionIdle:  sessionIdle,
		CycleEvery:   cycleEvery,
		Cycle: func(ctx context.Context) error {
			// The example warehouse runs on a simulated clock: hop to the
			// next midnight, then run the cycle concurrently with traffic —
			// build-then-swap keeps the previous generation serving.
			sys.AdvanceToMidnight()
			_, err := sys.RunMidnightCycleCtx(ctx)
			return err
		},
		OnDrain: sys.SaveState,
		Obs:     sys.Obs(),
		Log:     logger,
		Debug:   ds,
	})

	if debugAddr != "" {
		dbgBound, err := ds.Start(debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug listener on http://%s\n", dbgBound)
		defer func() {
			sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(sctx)
		}()
	}

	fmt.Fprintf(os.Stderr, "maxson-serve on http://%s (%s)\n", addr, srv.Config())
	if err := srv.Serve(ctx, addr); err != nil {
		fmt.Fprintln(os.Stderr, "maxson-serve: drain:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "maxson-serve: clean drain")
	return nil
}

// demoQueries is the recurring mix (the maxson-daily workload): it feeds
// the collector during seeding so the warm-up cycle has MPJPs to cache.
var demoQueries = []string{
	`SELECT get_json_object(payload, '$.item_name') n,
	        SUM(cast_double(get_json_object(payload, '$.turnover'))) s
	 FROM prod.sales GROUP BY get_json_object(payload, '$.item_name')
	 ORDER BY s DESC LIMIT 5`,
	`SELECT get_json_object(payload, '$.region') r, COUNT(*) c
	 FROM prod.sales GROUP BY get_json_object(payload, '$.region') ORDER BY r`,
	`SELECT get_json_object(payload, '$.host') h,
	        MAX(cast_double(get_json_object(payload, '$.cpu'))) peak
	 FROM prod.machines GROUP BY get_json_object(payload, '$.host')
	 ORDER BY h`,
	`SELECT COUNT(*) c FROM prod.machines
	 WHERE get_json_object(payload, '$.alerts') > 4`,
}

// seedDemoWarehouse loads the example tables for demoDays days, replays the
// recurring query mix so the collector sees the workload, and runs one
// warm-up midnight cycle so the server answers from cache immediately.
func seedDemoWarehouse(ctx context.Context, sys *maxson.System, demoDays, rowsPerDay int) error {
	wh := sys.Warehouse()
	wh.CreateDatabase("prod")
	for _, table := range []string{"sales", "machines"} {
		schema := maxson.Schema{Columns: []maxson.Column{
			{Name: "ds", Type: maxson.TypeString},
			{Name: "payload", Type: maxson.TypeString},
		}}
		if err := wh.CreateTable("prod", table, schema); err != nil {
			return err
		}
	}
	for day := 1; day <= demoDays; day++ {
		for _, table := range []string{"sales", "machines"} {
			var rows [][]maxson.Datum
			for i := 0; i < rowsPerDay; i++ {
				var doc string
				if table == "sales" {
					doc = fmt.Sprintf(
						`{"item_id":%d,"item_name":"item-%03d","turnover":%d,"price":%d,"region":"r%d"}`,
						i, i%50, (day*37+i*11)%5000, i%20+1, i%5)
				} else {
					doc = fmt.Sprintf(
						`{"host":"node-%02d","cpu":%d,"mem":%d,"alerts":%d,"rack":"k%d"}`,
						i%16, (day*7+i)%100, (day*3+i*5)%100, i%7, i%4)
				}
				rows = append(rows, []maxson.Datum{
					maxson.Str(fmt.Sprintf("d%03d", day)),
					maxson.Str(doc),
				})
			}
			if _, err := wh.AppendRows("prod", table, rows); err != nil {
				return err
			}
		}
		sys.AdvanceClock(10 * time.Hour)
		for _, sql := range demoQueries {
			if _, _, err := sys.QueryCtx(ctx, sql); err != nil {
				return fmt.Errorf("seed day %d: %w", day, err)
			}
		}
		sys.AdvanceToMidnight()
	}
	report, err := sys.RunMidnightCycleCtx(ctx)
	if err != nil {
		return fmt.Errorf("warm-up cycle: %w", err)
	}
	fmt.Fprintf(os.Stderr, "warm-up cycle: %d MPJPs cached (%s)\n",
		report.Selected, report.StageSummary())
	return nil
}
