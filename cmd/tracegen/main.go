// Command tracegen generates a synthetic production query trace with the
// temporal/spatial correlations the paper measures (§II-D) and prints the
// workload analysis: the update-hour histogram (Fig 2), the
// queries-per-JSONPath distribution (Fig 4), recurrence statistics, and the
// redundant-parse fraction.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	days := flag.Int("days", 60, "trace length in days")
	users := flag.Int("users", 60, "distinct users")
	tables := flag.Int("tables", 40, "JSON tables")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Days = *days
	cfg.Users = *users
	cfg.Tables = *tables
	cfg.Seed = *seed

	tr := trace.Generate(cfg)
	rec := tr.Recurrence()
	fmt.Printf("trace: %d queries over %d days, %d users, %d tables\n",
		len(tr.Queries), tr.Days, rec.DistinctUsers, *tables)
	fmt.Printf("recurring queries: %.1f%% (paper: 82%%)\n\n", rec.RecurringFrac*100)

	fmt.Println(experiments.RunFig2(cfg).String())
	fmt.Println(experiments.RunFig4(cfg).String())
}
