// Command maxson-bench regenerates the paper's evaluation tables and
// figures (§V). Each experiment prints the same rows/series the paper
// reports, computed from this repository's implementation.
//
// Usage:
//
//	maxson-bench -exp all
//	maxson-bench -exp fig11 -rows 500
//	maxson-bench -exp table3 -days 60
//	maxson-bench -exp fig12 -json            # NDJSON to stdout
//	maxson-bench -exp all -json -out results.ndjson
//
// Experiments: fig2, fig3, fig4, table3, table4, fig11 (includes Table V),
// fig12, fig13, fig14, fig15, ablation, sparser, exec, extract, obs, mqo,
// serve, all.
//
// With -json each experiment emits one NDJSON document
// {"experiment": ..., "ran_ms": ..., "result": {...}} so downstream tooling
// can diff runs without scraping the human-readable tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig2..fig15, table3, table4, all)")
	rows := flag.Int("rows", 400, "rows per Table II table")
	days := flag.Int("days", 60, "trace length in days for workload/model experiments")
	seed := flag.Int64("seed", 1, "random seed")
	epochs := flag.Int("epochs", 12, "LSTM training epochs")
	asJSON := flag.Bool("json", false, "emit one NDJSON document per experiment instead of tables")
	outPath := flag.String("out", "", "with -json: write NDJSON to this file instead of stdout")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run; checked between experiments (0 = none)")
	debugAddr := flag.String("debug-addr", "", "serve a diagnostics server (pprof, process metrics) while experiments run")
	flag.Parse()

	if *debugAddr != "" {
		// Experiments build their own systems, so this server exposes the
		// process-level surface — chiefly net/http/pprof for profiling a
		// running benchmark — rather than any one experiment's registry.
		ds := obs.NewDebugServer(obs.NewRegistry())
		addr, err := ds.Start(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/healthz, /debug/pprof)\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(sctx)
		}()
	}

	// The -timeout budget also rides a context so ctx-aware experiments
	// (mqo) abort mid-run; the between-experiments check below still stops
	// the overall sweep.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	traceCfg := trace.DefaultConfig()
	traceCfg.Days = *days
	traceCfg.Seed = *seed
	lstmCfg := core.LSTMConfig{Hidden: 16, Epochs: *epochs, LR: 0.02, Seed: *seed, Batch: 16}

	runners := map[string]func() (fmt.Stringer, error){
		"fig2": func() (fmt.Stringer, error) { return experiments.RunFig2(traceCfg), nil },
		"fig3": func() (fmt.Stringer, error) { return experiments.RunFig3(*rows * 4) },
		"fig4": func() (fmt.Stringer, error) { return experiments.RunFig4(traceCfg), nil },
		"table3": func() (fmt.Stringer, error) {
			return experiments.RunTable3(traceCfg, lstmCfg), nil
		},
		"table4": func() (fmt.Stringer, error) {
			cfg := traceCfg
			if cfg.Days < 45 {
				cfg.Days = 45 // the 30-day window needs history
			}
			return experiments.RunTable4(cfg, lstmCfg), nil
		},
		"fig11":    func() (fmt.Stringer, error) { return experiments.RunFig11(*rows, *seed) },
		"fig12":    func() (fmt.Stringer, error) { return experiments.RunFig12(*rows, *seed) },
		"fig13":    func() (fmt.Stringer, error) { return experiments.RunFig13(*rows, *seed) },
		"fig14":    func() (fmt.Stringer, error) { return experiments.RunFig14(*rows, *seed, 7) },
		"fig15":    func() (fmt.Stringer, error) { return experiments.RunFig15(*rows, *seed) },
		"ablation": func() (fmt.Stringer, error) { return experiments.RunAblation(*rows, *seed) },
		"sparser":  func() (fmt.Stringer, error) { return experiments.RunSparserStudy(*rows, *seed) },
		"exec":     func() (fmt.Stringer, error) { return experiments.RunExecBench(*rows, *seed) },
		"extract":  func() (fmt.Stringer, error) { return experiments.RunExtractBench(*rows, *seed) },
		"obs":      func() (fmt.Stringer, error) { return experiments.RunObsBench() },
		"mqo":      func() (fmt.Stringer, error) { return experiments.RunMQOBench(ctx, *rows, *seed) },
		"serve":    func() (fmt.Stringer, error) { return experiments.RunServeBench(ctx, *rows, *seed) },
	}
	order := []string{"fig2", "fig3", "fig4", "table3", "table4", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation", "sparser", "exec", "extract", "obs", "mqo", "serve"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s, all\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	var jsonOut io.Writer
	if *asJSON {
		jsonOut = os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			jsonOut = f
		}
	}

	runStart := time.Now()
	for _, name := range selected {
		// Experiments are self-contained, so the budget is checked between
		// them: an overrun stops cleanly with completed results intact.
		if *timeout > 0 && time.Since(runStart) > *timeout {
			fmt.Fprintf(os.Stderr, "maxson-bench: -timeout %v exceeded; skipping remaining experiments starting at %s\n", *timeout, name)
			os.Exit(3)
		}
		start := time.Now()
		result, err := runners[name]()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ran := time.Since(start)
		if *asJSON {
			doc := map[string]any{
				"experiment": name,
				"ran_ms":     ran.Milliseconds(),
				"result":     result,
			}
			enc := json.NewEncoder(jsonOut)
			if err := enc.Encode(doc); err != nil {
				log.Fatalf("%s: encode: %v", name, err)
			}
			continue
		}
		fmt.Printf("==== %s (ran in %v) ====\n", name, ran.Round(time.Millisecond))
		fmt.Println(result.String())
	}
}
