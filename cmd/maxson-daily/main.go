// Command maxson-daily simulates a production deployment over many days:
// data loads every morning, a recurring query mix runs during the day, and
// the Maxson midnight cycle trains, predicts, scores, and re-populates the
// cache each night. It prints a per-day operations report — parse traffic,
// cache hit behaviour, cycle statistics — showing the system converging
// onto the workload.
//
// Usage:
//
//	maxson-daily -days 21 -budget-mb 64
//	maxson-daily -days 21 -debug-addr 127.0.0.1:6060   # live diagnostics
//
// With -debug-addr the run serves the diagnostics server while it works:
// Prometheus /metrics, the flight recorder's /debug/queries, the last cycle
// report on /debug/cycle, /healthz, and net/http/pprof.
//
// Exit codes: 0 success, 1 setup failure (tables/loads), 2 query failure,
// 3 midnight-cycle failure (the partial cycle report is flushed to stderr),
// 4 output failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro"
)

// Exit codes; each failure class gets its own so operators (and CI) can
// tell a broken workload from a broken cycle without parsing stderr.
const (
	exitSetup  = 1
	exitQuery  = 2
	exitCycle  = 3
	exitOutput = 4
)

// codedError carries the process exit code alongside the cause.
type codedError struct {
	code int
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

func fail(code int, err error) error { return &codedError{code: code, err: err} }

func main() {
	days := flag.Int("days", 21, "days to simulate")
	budgetMB := flag.Int64("budget-mb", 64, "cache budget in MiB")
	rowsPerDay := flag.Int("rows", 200, "rows loaded per table per day")
	warmup := flag.Int("warmup", 8, "days before the first midnight cycle")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	verbose := flag.Bool("v", false, "emit structured cycle logs to stderr")
	metrics := flag.Bool("metrics", false, "dump the metrics registry after the run")
	debugAddr := flag.String("debug-addr", "", "serve the diagnostics server (metrics, flight recorder, pprof) on this address")
	linger := flag.Duration("linger", 0, "with -debug-addr: keep the debug server up this long after the run (for scraping)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *days, *budgetMB, *rowsPerDay, *warmup, *verbose, *metrics, *debugAddr, *linger); err != nil {
		fmt.Fprintln(os.Stderr, "maxson-daily:", err)
		code := exitSetup
		var ce *codedError
		if errors.As(err, &ce) {
			code = ce.code
		}
		os.Exit(code)
	}
}

func run(ctx context.Context, days int, budgetMB int64, rowsPerDay, warmup int, verbose, metrics bool, debugAddr string, linger time.Duration) error {
	var logger *slog.Logger
	if verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	sys := maxson.NewSystem(maxson.SystemConfig{
		DefaultDB:        "prod",
		CacheBudgetBytes: budgetMB << 20,
		Logger:           logger,
	})
	if debugAddr != "" {
		ds := sys.NewDebugServer()
		addr, err := ds.Start(debugAddr)
		if err != nil {
			return fail(exitSetup, fmt.Errorf("debug server: %w", err))
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/queries, /debug/cycle, /debug/pprof)\n", addr)
		defer func() {
			if linger > 0 {
				time.Sleep(linger)
			}
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(sctx)
		}()
	}
	wh := sys.Warehouse()
	wh.CreateDatabase("prod")

	// Two tables: sale logs and machine logs, each with a JSON column.
	for _, table := range []string{"sales", "machines"} {
		schema := maxson.Schema{Columns: []maxson.Column{
			{Name: "ds", Type: maxson.TypeString},
			{Name: "payload", Type: maxson.TypeString},
		}}
		if err := wh.CreateTable("prod", table, schema); err != nil {
			return fail(exitSetup, fmt.Errorf("create table prod.%s: %w", table, err))
		}
	}

	loadDay := func(day int) error {
		for _, table := range []string{"sales", "machines"} {
			var rows [][]maxson.Datum
			for i := 0; i < rowsPerDay; i++ {
				var doc string
				if table == "sales" {
					doc = fmt.Sprintf(
						`{"item_id":%d,"item_name":"item-%03d","turnover":%d,"price":%d,"region":"r%d"}`,
						i, i%50, (day*37+i*11)%5000, i%20+1, i%5)
				} else {
					doc = fmt.Sprintf(
						`{"host":"node-%02d","cpu":%d,"mem":%d,"alerts":%d,"rack":"k%d"}`,
						i%16, (day*7+i)%100, (day*3+i*5)%100, i%7, i%4)
				}
				rows = append(rows, []maxson.Datum{
					maxson.Str(fmt.Sprintf("d%03d", day)),
					maxson.Str(doc),
				})
			}
			if _, err := wh.AppendRows("prod", table, rows); err != nil {
				return fail(exitSetup, fmt.Errorf("load day %d into prod.%s: %w", day, table, err))
			}
		}
		return nil
	}

	// The recurring daily query mix (each runs twice a day — the paper's
	// spatial-correlation pattern).
	queries := []string{
		`SELECT get_json_object(payload, '$.item_name') n,
		        SUM(cast_double(get_json_object(payload, '$.turnover'))) s
		 FROM prod.sales GROUP BY get_json_object(payload, '$.item_name')
		 ORDER BY s DESC LIMIT 5`,
		`SELECT get_json_object(payload, '$.region') r, COUNT(*) c
		 FROM prod.sales GROUP BY get_json_object(payload, '$.region') ORDER BY r`,
		`SELECT get_json_object(payload, '$.host') h,
		        MAX(cast_double(get_json_object(payload, '$.cpu'))) peak
		 FROM prod.machines GROUP BY get_json_object(payload, '$.host')
		 HAVING MAX(cast_double(get_json_object(payload, '$.cpu'))) > 80
		 ORDER BY h`,
		`SELECT COUNT(*) c FROM prod.machines
		 WHERE get_json_object(payload, '$.alerts') > 4`,
	}

	cm := sys.Engine().CostModel()
	fmt.Println("day | parsed-docs | cache-values | sim-time    | cycle (MPJPs cached, bytes)")
	fmt.Println("----+-------------+--------------+-------------+----------------------------")
	for day := 1; day <= days; day++ {
		if err := loadDay(day); err != nil {
			return err
		}
		sys.AdvanceClock(10 * time.Hour) // queries run mid-day, after the load

		var parsed, cached int64
		var simTime time.Duration
		for rep := 0; rep < 2; rep++ {
			for _, sql := range queries {
				_, m, err := sys.QueryCtx(ctx, sql)
				if err != nil {
					return fail(exitQuery, fmt.Errorf("day %d query failed: %w", day, err))
				}
				parsed += m.Parse.Docs.Load()
				cached += m.CacheValuesRead.Load()
				simTime += m.SimulatedTime(cm)
			}
		}

		cycleNote := "-"
		stageNote := ""
		sys.AdvanceToMidnight()
		if day >= warmup {
			report, err := sys.RunMidnightCycleCtx(ctx)
			if err != nil {
				// Flush what the cycle got done before it died — the partial
				// stage timings are the first thing an operator wants.
				if report != nil {
					fmt.Fprintf(os.Stderr, "partial cycle report (day %d): %s\n", day, report.StageSummary())
				}
				return fail(exitCycle, fmt.Errorf("day %d midnight cycle failed: %w", day, err))
			}
			cycleNote = fmt.Sprintf("%d cached, %s", report.Selected, humanBytes(sys.CacheBytes()))
			stageNote = report.StageSummary()
		}
		fmt.Printf("%3d | %11d | %12d | %-11v | %s\n", day, parsed, cached, simTime, cycleNote)
		if stageNote != "" {
			fmt.Printf("    |             |              |             | stages: %s\n", stageNote)
		}
	}

	fmt.Println()
	printSummary(sys)
	if metrics {
		fmt.Println()
		fmt.Println("metrics registry:")
		if err := sys.Obs().WriteText(os.Stdout); err != nil {
			return fail(exitOutput, fmt.Errorf("write metrics: %w", err))
		}
	}
	return nil
}

func printSummary(sys *maxson.System) {
	entries := sys.Core().Registry.Entries()
	fmt.Printf("final cache: %d entries, %s\n", len(entries), humanBytes(sys.CacheBytes()))
	for _, e := range entries {
		state := "valid"
		if e.Invalid {
			state = "invalid"
		}
		fmt.Printf("  %-60s %8s  %s\n", e.Key.String(), humanBytes(e.Bytes), state)
	}
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
