// Command maxson-daily simulates a production deployment over many days:
// data loads every morning, a recurring query mix runs during the day, and
// the Maxson midnight cycle trains, predicts, scores, and re-populates the
// cache each night. It prints a per-day operations report — parse traffic,
// cache hit behaviour, cycle statistics — showing the system converging
// onto the workload.
//
// Usage:
//
//	maxson-daily -days 21 -budget-mb 64
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"time"

	"repro"
)

func main() {
	days := flag.Int("days", 21, "days to simulate")
	budgetMB := flag.Int64("budget-mb", 64, "cache budget in MiB")
	rowsPerDay := flag.Int("rows", 200, "rows loaded per table per day")
	warmup := flag.Int("warmup", 8, "days before the first midnight cycle")
	verbose := flag.Bool("v", false, "emit structured cycle logs to stderr")
	metrics := flag.Bool("metrics", false, "dump the metrics registry after the run")
	flag.Parse()

	var logger *slog.Logger
	if *verbose {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	}
	sys := maxson.NewSystem(maxson.SystemConfig{
		DefaultDB:        "prod",
		CacheBudgetBytes: *budgetMB << 20,
		Logger:           logger,
	})
	wh := sys.Warehouse()
	wh.CreateDatabase("prod")

	// Two tables: sale logs and machine logs, each with a JSON column.
	for _, table := range []string{"sales", "machines"} {
		schema := maxson.Schema{Columns: []maxson.Column{
			{Name: "ds", Type: maxson.TypeString},
			{Name: "payload", Type: maxson.TypeString},
		}}
		if err := wh.CreateTable("prod", table, schema); err != nil {
			log.Fatal(err)
		}
	}

	loadDay := func(day int) {
		for _, table := range []string{"sales", "machines"} {
			var rows [][]maxson.Datum
			for i := 0; i < *rowsPerDay; i++ {
				var doc string
				if table == "sales" {
					doc = fmt.Sprintf(
						`{"item_id":%d,"item_name":"item-%03d","turnover":%d,"price":%d,"region":"r%d"}`,
						i, i%50, (day*37+i*11)%5000, i%20+1, i%5)
				} else {
					doc = fmt.Sprintf(
						`{"host":"node-%02d","cpu":%d,"mem":%d,"alerts":%d,"rack":"k%d"}`,
						i%16, (day*7+i)%100, (day*3+i*5)%100, i%7, i%4)
				}
				rows = append(rows, []maxson.Datum{
					maxson.Str(fmt.Sprintf("d%03d", day)),
					maxson.Str(doc),
				})
			}
			if _, err := wh.AppendRows("prod", table, rows); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The recurring daily query mix (each runs twice a day — the paper's
	// spatial-correlation pattern).
	queries := []string{
		`SELECT get_json_object(payload, '$.item_name') n,
		        SUM(cast_double(get_json_object(payload, '$.turnover'))) s
		 FROM prod.sales GROUP BY get_json_object(payload, '$.item_name')
		 ORDER BY s DESC LIMIT 5`,
		`SELECT get_json_object(payload, '$.region') r, COUNT(*) c
		 FROM prod.sales GROUP BY get_json_object(payload, '$.region') ORDER BY r`,
		`SELECT get_json_object(payload, '$.host') h,
		        MAX(cast_double(get_json_object(payload, '$.cpu'))) peak
		 FROM prod.machines GROUP BY get_json_object(payload, '$.host')
		 HAVING MAX(cast_double(get_json_object(payload, '$.cpu'))) > 80
		 ORDER BY h`,
		`SELECT COUNT(*) c FROM prod.machines
		 WHERE get_json_object(payload, '$.alerts') > 4`,
	}

	cm := sys.Engine().CostModel()
	fmt.Println("day | parsed-docs | cache-values | sim-time    | cycle (MPJPs cached, bytes)")
	fmt.Println("----+-------------+--------------+-------------+----------------------------")
	for day := 1; day <= *days; day++ {
		loadDay(day)
		sys.AdvanceClock(10 * time.Hour) // queries run mid-day, after the load

		var parsed, cached int64
		var simTime time.Duration
		for rep := 0; rep < 2; rep++ {
			for _, sql := range queries {
				_, m, err := sys.Query(sql)
				if err != nil {
					log.Fatal(err)
				}
				parsed += m.Parse.Docs.Load()
				cached += m.CacheValuesRead.Load()
				simTime += m.SimulatedTime(cm)
			}
		}

		cycleNote := "-"
		stageNote := ""
		sys.AdvanceToMidnight()
		if day >= *warmup {
			report, err := sys.RunMidnightCycle()
			if err != nil {
				log.Fatal(err)
			}
			cycleNote = fmt.Sprintf("%d cached, %s", report.Selected, humanBytes(sys.CacheBytes()))
			stageNote = report.StageSummary()
		}
		fmt.Printf("%3d | %11d | %12d | %-11v | %s\n", day, parsed, cached, simTime, cycleNote)
		if stageNote != "" {
			fmt.Printf("    |             |              |             | stages: %s\n", stageNote)
		}
	}

	fmt.Println()
	printSummary(sys)
	if *metrics {
		fmt.Println()
		fmt.Println("metrics registry:")
		if err := sys.Obs().WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func printSummary(sys *maxson.System) {
	entries := sys.Core().Registry.Entries()
	fmt.Printf("final cache: %d entries, %s\n", len(entries), humanBytes(sys.CacheBytes()))
	for _, e := range entries {
		state := "valid"
		if e.Invalid {
			state = "invalid"
		}
		fmt.Printf("  %-60s %8s  %s\n", e.Key.String(), humanBytes(e.Bytes), state)
	}
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
