package maxson

// One benchmark per table/figure of the paper's evaluation. Each bench runs
// the corresponding experiment harness and reports the headline quantities
// as custom metrics alongside wall-clock, so `go test -bench=.` regenerates
// the whole evaluation. Scaled-down row counts keep iterations tractable;
// run cmd/maxson-bench for full-size reports.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

const (
	benchRows = 200
	benchSeed = 1
)

func benchTrace() trace.Config {
	cfg := trace.DefaultConfig()
	cfg.Days = 35
	cfg.Users = 30
	cfg.Tables = 20
	return cfg
}

func benchLSTM() core.LSTMConfig {
	return core.LSTMConfig{Hidden: 12, Epochs: 6, LR: 0.02, Seed: benchSeed, Batch: 16}
}

func BenchmarkFig2UpdateHistogram(b *testing.B) {
	var noonShare float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(benchTrace())
		noon := r.Hist[11] + r.Hist[12] + r.Hist[13]
		noonShare = float64(noon) / float64(r.TotalUpdates)
	}
	b.ReportMetric(noonShare*100, "%updates-near-noon")
}

func BenchmarkFig3ParseCost(b *testing.B) {
	var minShare float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(benchRows * 2)
		if err != nil {
			b.Fatal(err)
		}
		minShare = 1
		for _, row := range r.Rows {
			if row.ParseShare < minShare {
				minShare = row.ParseShare
			}
		}
	}
	b.ReportMetric(minShare*100, "%min-parse-share")
}

func BenchmarkFig4PowerLaw(b *testing.B) {
	var mean, conc float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(benchTrace())
		mean = r.Mean
		conc = r.Concentration
	}
	b.ReportMetric(mean, "queries/path")
	b.ReportMetric(conc*100, "%paths-for-89%traffic")
}

func BenchmarkTable3Models(b *testing.B) {
	var crfF1, lrF1 float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable3(benchTrace(), benchLSTM())
		for _, row := range r.Rows {
			switch row.Model {
			case "LSTM+CRF":
				crfF1 = row.F1
			case "LR":
				lrF1 = row.F1
			}
		}
	}
	b.ReportMetric(crfF1, "lstm+crf-F1")
	b.ReportMetric(lrF1, "lr-F1")
}

func BenchmarkTable4Windows(b *testing.B) {
	cfg := benchTrace()
	cfg.Days = 45
	var bestF1 float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunTable4(cfg, benchLSTM())
		for _, row := range r.Rows {
			if row.Model == "LSTM+CRF" && row.Window == 7 {
				bestF1 = row.F1
			}
		}
	}
	b.ReportMetric(bestF1, "1wk-lstm+crf-F1")
}

func BenchmarkFig11CacheBudgets(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Budget == "400GB" && row.Strategy == "scoring" {
				speedup = float64(r.NoCache) / float64(row.TotalTime)
			}
		}
	}
	b.ReportMetric(speedup, "full-budget-speedup-x")
}

func BenchmarkFig12Breakdown(b *testing.B) {
	var inputShrink float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var sparkMB, maxsonMB float64
		for _, row := range r.Rows {
			if row.Query == "Q9" {
				if row.System == "spark" {
					sparkMB = row.InputMB
				} else {
					maxsonMB = row.InputMB
				}
			}
		}
		if maxsonMB > 0 {
			inputShrink = sparkMB / maxsonMB
		}
	}
	b.ReportMetric(inputShrink, "q9-input-shrink-x")
}

func BenchmarkFig13PlanTime(b *testing.B) {
	var avgOverheadNs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, row := range r.Rows {
			total += float64(row.MaxsonPlan - row.SparkPlan)
		}
		avgOverheadNs = total / float64(len(r.Rows))
	}
	b.ReportMetric(avgOverheadNs, "avg-plan-overhead-ns")
}

func BenchmarkFig14OnlineLRU(b *testing.B) {
	var lruHit, maxsonHit float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14(benchRows, benchSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
		lruHit = r.LRUHitRatio
		maxsonHit = r.MaxsonHitRatio
	}
	b.ReportMetric(lruHit, "lru-hit-ratio")
	b.ReportMetric(maxsonHit, "maxson-hit-ratio")
}

func BenchmarkFig15Parsers(b *testing.B) {
	var maxsonSpeedup, misonSpeedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var jackson, mison, maxson float64
		for _, row := range r.Rows {
			jackson += float64(row.SparkJackson)
			mison += float64(row.SparkMison)
			maxson += float64(row.Maxson)
		}
		maxsonSpeedup = jackson / maxson
		misonSpeedup = jackson / mison
	}
	b.ReportMetric(maxsonSpeedup, "maxson-vs-jackson-x")
	b.ReportMetric(misonSpeedup, "mison-vs-jackson-x")
}

// BenchmarkAblation measures the contribution of each design choice.
func BenchmarkAblation(b *testing.B) {
	var fullSpeedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblation(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		fullSpeedup = float64(r.NoCache.TotalTime) / float64(r.Rows[len(r.Rows)-1].TotalTime)
	}
	b.ReportMetric(fullSpeedup, "full-maxson-speedup-x")
}

// BenchmarkSparserStudy measures the raw-prefilter extension.
func BenchmarkSparserStudy(b *testing.B) {
	var prefilterSpeedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSparserStudy(benchRows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		sel := r.Rows[0]
		prefilterSpeedup = float64(sel.Spark) / float64(sel.SparkSparser)
	}
	b.ReportMetric(prefilterSpeedup, "prefilter-speedup-x")
}

// BenchmarkEndToEndDailyCycle measures the full public-API loop: load a
// day's data, run the recurring queries, and execute the midnight cycle.
func BenchmarkEndToEndDailyCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSystem(SystemConfig{DefaultDB: "mydb", RowGroupRows: 64})
		wh := sys.Warehouse()
		wh.CreateDatabase("mydb")
		schema := Schema{Columns: []Column{
			{Name: "date", Type: TypeString},
			{Name: "logs", Type: TypeString},
		}}
		if err := wh.CreateTable("mydb", "s", schema); err != nil {
			b.Fatal(err)
		}
		sql := `SELECT get_json_object(logs, '$.v') v FROM mydb.s`
		for day := 0; day < 8; day++ {
			rows := [][]Datum{{Str("d"), Str(`{"v":1,"w":"x"}`)}}
			if _, err := wh.AppendRows("mydb", "s", rows); err != nil {
				b.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				if _, _, err := sys.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
			sys.AdvanceToMidnight()
			if day >= 6 {
				if _, err := sys.RunMidnightCycle(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
