package maxson

import (
	"fmt"
	"testing"
	"time"
)

// buildDemo loads a small sale-logs table through the public API.
func buildDemo(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(SystemConfig{DefaultDB: "mydb", RowGroupRows: 16})
	wh := sys.Warehouse()
	wh.CreateDatabase("mydb")
	schema := Schema{Columns: []Column{
		{Name: "mall_id", Type: TypeString},
		{Name: "date", Type: TypeString},
		{Name: "sale_logs", Type: TypeString},
	}}
	if err := wh.CreateTable("mydb", "sales", schema); err != nil {
		t.Fatal(err)
	}
	var rows [][]Datum
	for day := 1; day <= 20; day++ {
		rows = append(rows, []Datum{
			Str("0001"),
			Str(fmt.Sprintf("201901%02d", day)),
			Str(fmt.Sprintf(`{"item_id":%d,"item_name":"item-%02d","turnover":%d}`, day, day, day*10)),
		})
	}
	if _, err := wh.AppendRows("mydb", "sales", rows); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceClock(24 * time.Hour)
	return sys
}

func TestPublicAPIQueryAndCycle(t *testing.T) {
	sys := buildDemo(t)
	sql := `SELECT get_json_object(sale_logs, '$.turnover') tv FROM mydb.sales WHERE date = '20190105'`

	rs, m, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "50" {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if m.Parse.Docs.Load() == 0 {
		t.Error("uncached query should parse")
	}

	// Feed a few days of recurring history so the predictor has signal.
	for day := 0; day < 10; day++ {
		if day > 0 {
			sys.AdvanceClock(24 * time.Hour)
		}
		for rep := 0; rep < 3; rep++ {
			if _, _, err := sys.Query(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.AdvanceToMidnight()
	report, err := sys.RunMidnightCycle()
	if err != nil {
		t.Fatal(err)
	}
	if report.Selected == 0 {
		t.Fatalf("cycle cached nothing: %+v", report)
	}
	if sys.CacheBytes() == 0 {
		t.Error("CacheBytes = 0 after cycle")
	}

	_, m2, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Parse.Docs.Load() != 0 {
		t.Errorf("cached query still parsed %d docs", m2.Parse.Docs.Load())
	}
}

func TestPublicAPIMisonBackend(t *testing.T) {
	sys := NewSystem(SystemConfig{DefaultDB: "d", Backend: "mison"})
	if sys.Engine().Backend().Name() != "mison" {
		t.Error("mison backend not selected")
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	if sys.Now().IsZero() {
		t.Error("clock not initialized")
	}
	if sys.Core() == nil || sys.Engine() == nil || sys.Warehouse() == nil {
		t.Error("accessors returned nil")
	}
}
