package maxson

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFlightRecorderThroughSystem drives the public API end to end and
// checks the flight recorder's view of it: IDs assigned in order, plan
// modes tracking the cache lifecycle (raw before the midnight cycle, cached
// after), totals and metric deltas attributed per query.
func TestFlightRecorderThroughSystem(t *testing.T) {
	sys := buildDemo(t)
	rec := sys.Flight()
	if rec == nil || !rec.Enabled() {
		t.Fatal("flight recorder not enabled by default")
	}
	sql := `SELECT get_json_object(sale_logs, '$.turnover') tv FROM mydb.sales WHERE date = '20190105'`

	if _, _, err := sys.Query(sql); err != nil {
		t.Fatal(err)
	}
	recs := rec.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("Recent = %d records, want 1", len(recs))
	}
	r0 := recs[0]
	if r0.ID != 1 || r0.SQL != sql {
		t.Errorf("record = id=%d sql=%q", r0.ID, r0.SQL)
	}
	if r0.PlanMode != "raw" {
		t.Errorf("uncached plan mode = %q, want raw", r0.PlanMode)
	}
	if r0.ParseDocs == 0 || r0.BytesRead == 0 || r0.RowsOut != 1 || r0.Batches == 0 {
		t.Errorf("totals = %+v", r0)
	}
	if r0.Deltas["engine_queries_total"] != 1 {
		t.Errorf("deltas = %v, want engine_queries_total=1", r0.Deltas)
	}
	var stages []string
	for _, s := range r0.Stages {
		stages = append(stages, s.Name)
	}
	for _, want := range []string{"plan", "execute", "read_sim", "parse_sim", "compute_sim"} {
		if !strings.Contains(strings.Join(stages, ","), want) {
			t.Errorf("stages %v missing %q", stages, want)
		}
	}

	// Converge the cache, then check the recorder sees the mode flip.
	for day := 0; day < 10; day++ {
		if day > 0 {
			sys.AdvanceClock(24 * time.Hour)
		}
		for rep := 0; rep < 3; rep++ {
			if _, _, err := sys.Query(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	sys.AdvanceToMidnight()
	if _, err := sys.RunMidnightCycle(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Query(sql); err != nil {
		t.Fatal(err)
	}
	cached := rec.Recent(1)[0]
	if cached.PlanMode != "cached" && cached.PlanMode != "combined" {
		t.Errorf("post-cycle plan mode = %q, want cached or combined", cached.PlanMode)
	}
	if cached.ParseDocs != 0 {
		t.Errorf("post-cycle record parsed %d docs", cached.ParseDocs)
	}
	if cached.CacheValues == 0 {
		t.Error("post-cycle record read no cache values")
	}
	if cached.ID <= r0.ID {
		t.Errorf("IDs not monotonic: %d then %d", r0.ID, cached.ID)
	}
}

// TestFlightRecorderDisabled checks FlightQueries<0 turns recording off
// without disturbing the query path.
func TestFlightRecorderDisabled(t *testing.T) {
	sys := NewSystem(SystemConfig{DefaultDB: "d", FlightQueries: -1})
	if sys.Flight() != nil {
		t.Fatal("recorder present despite FlightQueries=-1")
	}
	sys.Warehouse().CreateDatabase("d")
	if err := sys.Warehouse().CreateTable("d", "t", Schema{Columns: []Column{
		{Name: "j", Type: TypeString}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Warehouse().AppendRows("d", "t", [][]Datum{{Str(`{"a":1}`)}}); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceClock(24 * time.Hour)
	rs, _, err := sys.Query(`SELECT get_json_object(j, '$.a') FROM d.t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("rows = %v", rs.Rows)
	}
}

// TestDebugServerThroughSystem exercises every route of the wired debug
// server against a live system: Prometheus metrics carrying engine series
// with histogram buckets, the flight recorder page, the cycle report, and
// health.
func TestDebugServerThroughSystem(t *testing.T) {
	sys := buildDemo(t)
	sql := `SELECT get_json_object(sale_logs, '$.turnover') tv FROM mydb.sales WHERE date = '20190105'`
	if _, _, err := sys.Query(sql); err != nil {
		t.Fatal(err)
	}
	ds := sys.NewDebugServer()
	h := ds.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		return rr
	}

	rr := get("/metrics")
	if rr.Code != http.StatusOK || rr.Header().Get("Content-Type") != obs.PromContentType {
		t.Fatalf("/metrics = %d %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE engine_queries_total counter",
		"# TYPE engine_query_wall_ns histogram",
		`engine_query_wall_ns_bucket{le="+Inf"} 1`,
		"# TYPE engine_batch_rows_count histogram",
		"flight_queries_recorded_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rr = get("/debug/queries")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/queries = %d", rr.Code)
	}
	var page struct {
		Total   uint64            `json:"total"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Records) != 1 {
		t.Errorf("queries page = total=%d records=%d", page.Total, len(page.Records))
	}

	if rr = get("/debug/cycle"); rr.Code != http.StatusNotFound {
		t.Errorf("/debug/cycle before any cycle = %d, want 404", rr.Code)
	}
	sys.AdvanceToMidnight()
	if _, err := sys.RunMidnightCycle(); err != nil {
		t.Fatal(err)
	}
	rr = get("/debug/cycle")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/cycle after a cycle = %d", rr.Code)
	}
	var report CycleReport
	if err := json.Unmarshal(rr.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Stages) != 5 {
		t.Errorf("cycle report stages = %d, want 5", len(report.Stages))
	}

	if rr = get("/healthz"); rr.Code != http.StatusOK {
		t.Errorf("/healthz = %d", rr.Code)
	}
	if rr = get("/debug/pprof/"); rr.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d", rr.Code)
	}
}

// TestTraceExportThroughSystem checks a traced query's span tree exports as
// loadable Chrome trace-event JSON with the plan/scan structure intact.
func TestTraceExportThroughSystem(t *testing.T) {
	sys := buildDemo(t)
	_, _, m, err := sys.Explain(`SELECT get_json_object(sale_logs, '$.turnover') tv FROM mydb.sales`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trace == nil {
		t.Fatal("Explain produced no trace")
	}
	var buf bytes.Buffer
	if err := obs.WriteTraceEvents(&buf, m.Trace); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace export not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q phase = %q", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	if !names["query"] && !names["scan"] {
		t.Errorf("trace events missing query/scan spans: %v", names)
	}
}
