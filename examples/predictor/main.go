// Command predictor trains the MPJP predictor on a synthetic production
// trace and compares the paper's model families head-to-head, printing a
// Table III-style report plus a Viterbi-decoded label sequence for one
// weekly-recurring path.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultConfig()
	cfg.Days = 45
	fmt.Printf("generating %d-day trace (%d users, %d tables)...\n", cfg.Days, cfg.Users, cfg.Tables)
	tr := trace.Generate(cfg)
	fmt.Printf("  %d queries, %.0f%% recurring, mean %.1f queries/path\n\n",
		len(tr.Queries), tr.Recurrence().RecurringFrac*100, tr.MeanQueriesPerPath())

	const window = 7
	counts := tr.CountMatrix()
	keys := trace.SortedKeys(counts)
	samples := core.BuildSamples(counts, keys, window, window, tr.Days, tr.Start.Unix()/86400)
	train, _, test := core.SplitSamples(samples)
	fmt.Printf("dataset: %d samples (%d train / %d test), window %d days\n\n",
		len(samples), len(train), len(test), window)

	lstmCfg := core.LSTMConfig{Hidden: 16, Epochs: 12, LR: 0.02, Seed: 1, Batch: 16}
	models := []core.Predictor{
		core.NewLRPredictor(),
		core.NewSVMPredictor(),
		core.NewMLPPredictor(),
		core.NewUniLSTM(lstmCfg),
		core.NewLSTMCRF(lstmCfg),
	}
	fmt.Println("model          precision  recall  F1")
	var crf *core.LSTMCRF
	for _, m := range models {
		m.Train(train)
		s := core.EvaluatePredictor(m, test)
		fmt.Printf("%-14s %.3f      %.3f   %.3f\n", m.Name(), s.Precision, s.Recall, s.F1)
		if c, ok := m.(*core.LSTMCRF); ok {
			crf = c
		}
	}

	// Show a decoded label sequence for one test sample.
	if crf != nil && len(test) > 0 {
		s := test[0]
		fmt.Printf("\nexample path %s\n", s.Key)
		fmt.Printf("  gold labels:    %v\n", s.Labels)
		fmt.Printf("  viterbi decode: %v\n", crf.DecodeSequence(s))
		fmt.Printf("  next-day MPJP prediction: %d (gold %d)\n", crf.Predict(s), s.Target())
	}
}
