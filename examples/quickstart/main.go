// Command quickstart is the smallest end-to-end Maxson session: create a
// table of JSON logs, query it (paying the parse cost), run one midnight
// caching cycle, and query again (served from the cache).
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys := maxson.NewSystem(maxson.SystemConfig{DefaultDB: "mydb"})
	wh := sys.Warehouse()
	wh.CreateDatabase("mydb")

	schema := maxson.Schema{Columns: []maxson.Column{
		{Name: "mall_id", Type: maxson.TypeString},
		{Name: "date", Type: maxson.TypeString},
		{Name: "sale_logs", Type: maxson.TypeString},
	}}
	if err := wh.CreateTable("mydb", "sales", schema); err != nil {
		log.Fatal(err)
	}
	var rows [][]maxson.Datum
	for day := 1; day <= 28; day++ {
		rows = append(rows, []maxson.Datum{
			maxson.Str("0001"),
			maxson.Str(fmt.Sprintf("201901%02d", day)),
			maxson.Str(fmt.Sprintf(`{"item_id":%d,"item_name":"item-%02d","sale_count":%d,"turnover":%d}`,
				day, day, day%7+1, day*10)),
		})
	}
	if _, err := wh.AppendRows("mydb", "sales", rows); err != nil {
		log.Fatal(err)
	}
	sys.AdvanceClock(24 * time.Hour) // data loaded "yesterday"

	sql := `SELECT get_json_object(sale_logs, '$.item_name') AS item_name,
	               get_json_object(sale_logs, '$.turnover') AS turnover
	        FROM mydb.sales
	        ORDER BY cast_double(get_json_object(sale_logs, '$.turnover')) DESC
	        LIMIT 3`

	rs, m, err := sys.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== before caching ===")
	fmt.Print(rs.String())
	fmt.Printf("documents parsed: %d\n\n", m.Parse.Docs.Load())

	// Build up a few days of recurring history, then run the midnight cycle.
	for day := 0; day < 10; day++ {
		if day > 0 {
			sys.AdvanceClock(24 * time.Hour)
		}
		for rep := 0; rep < 3; rep++ {
			if _, _, err := sys.Query(sql); err != nil {
				log.Fatal(err)
			}
		}
	}
	sys.AdvanceToMidnight()
	report, err := sys.RunMidnightCycle()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("midnight cycle: %d MPJPs predicted, %d cached (%d bytes)\n\n",
		report.CandidateMPJP, report.Selected, sys.CacheBytes())

	rs, m, err = sys.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== after caching ===")
	fmt.Print(rs.String())
	fmt.Printf("documents parsed: %d (served from the JSONPath cache)\n", m.Parse.Docs.Load())
}
