// Command salelogs reproduces the paper's motivating scenario (Fig 1): a
// mall's daily sale logs stored as JSON, with two recurring analyst queries
// over 3-day sliding windows — one for the top-turnover item and one for
// the top-selling item. The queries overlap on item_id and item_name
// (spatial correlation) and repeat every day (temporal correlation), which
// is exactly the redundancy Maxson's cache removes.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys := maxson.NewSystem(maxson.SystemConfig{DefaultDB: "mydb"})
	wh := sys.Warehouse()
	wh.CreateDatabase("mydb")

	schema := maxson.Schema{Columns: []maxson.Column{
		{Name: "mall_id", Type: maxson.TypeString},
		{Name: "date", Type: maxson.TypeString},
		{Name: "sale_logs", Type: maxson.TypeString},
	}}
	if err := wh.CreateTable("mydb", "T", schema); err != nil {
		log.Fatal(err)
	}

	items := []string{"apple", "watermelon", "banana", "orange", "grape"}
	loadDay := func(day int) {
		var rows [][]maxson.Datum
		for mall := 1; mall <= 3; mall++ {
			for i, item := range items {
				rows = append(rows, []maxson.Datum{
					maxson.Str(fmt.Sprintf("%04d", mall)),
					maxson.Str(fmt.Sprintf("201901%02d", day)),
					maxson.Str(fmt.Sprintf(
						`{"item_id":%d,"item_name":"%s","sale_count":%d,"turnover":%d,"price":%d}`,
						i+1, item, (day+i*3)%20+1, (day*7+i*13)%200+10, i+2)),
				})
			}
		}
		if _, err := wh.AppendRows("mydb", "T", rows); err != nil {
			log.Fatal(err)
		}
	}

	queryWindow := func(day int) (string, string) {
		lo := fmt.Sprintf("201901%02d", day-2)
		hi := fmt.Sprintf("201901%02d", day)
		turnoverQ := fmt.Sprintf(`
			SELECT mall_id,
			       get_json_object(sale_logs, '$.item_id') AS item_id,
			       get_json_object(sale_logs, '$.item_name') AS item_name,
			       get_json_object(sale_logs, '$.turnover') AS turnover
			FROM mydb.T
			WHERE date BETWEEN '%s' AND '%s'
			ORDER BY cast_double(get_json_object(sale_logs, '$.turnover')) DESC
			LIMIT 1`, lo, hi)
		salesQ := fmt.Sprintf(`
			SELECT mall_id,
			       get_json_object(sale_logs, '$.item_id') AS item_id,
			       get_json_object(sale_logs, '$.item_name') AS item_name,
			       get_json_object(sale_logs, '$.sale_count') AS sale_count
			FROM mydb.T
			WHERE date BETWEEN '%s' AND '%s'
			ORDER BY cast_double(get_json_object(sale_logs, '$.sale_count')) DESC
			LIMIT 1`, lo, hi)
		return turnoverQ, salesQ
	}

	// Three seed days of data, then two weeks of daily load + queries.
	for day := 1; day <= 3; day++ {
		loadDay(day)
		sys.AdvanceClock(24 * time.Hour)
	}

	var parsedBefore, parsedAfter int64
	cm := sys.Engine().CostModel()
	var simBefore, simAfter time.Duration
	for day := 4; day <= 17; day++ {
		loadDay(day)
		sys.AdvanceClock(12 * time.Hour) // queries run midday, after the load
		q1, q2 := queryWindow(day)
		for _, sql := range []string{q1, q2} {
			_, m, err := sys.Query(sql)
			if err != nil {
				log.Fatal(err)
			}
			if day <= 10 {
				parsedBefore += m.Parse.Docs.Load()
				simBefore += m.SimulatedTime(cm)
			} else {
				parsedAfter += m.Parse.Docs.Load()
				simAfter += m.SimulatedTime(cm)
			}
		}
		sys.AdvanceToMidnight()
		if day == 10 {
			// Enough history: start the nightly prediction + caching cycle.
			report, err := sys.RunMidnightCycle()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("day %d midnight: predicted %d MPJPs, cached %d paths (%d bytes)\n",
				day, report.CandidateMPJP, report.Selected, sys.CacheBytes())
		} else if day > 10 {
			if _, err := sys.RunMidnightCycle(); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("\ndays 4-10 (no cache):  %5d documents parsed, simulated time %v\n", parsedBefore, simBefore)
	fmt.Printf("days 11-17 (cached):   %5d documents parsed, simulated time %v\n", parsedAfter, simAfter)
	if parsedAfter < parsedBefore {
		fmt.Printf("duplicate parsing eliminated: %.0f%% fewer documents parsed, %.1fx faster\n",
			100*(1-float64(parsedAfter)/float64(parsedBefore)),
			float64(simBefore)/float64(simAfter))
	}
}
