// Command onlinecache contrasts Maxson's prediction-based caching with a
// conventional online LRU cache over a multi-day replay of the Table II
// workload — the Fig 14 experiment as a runnable example.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	const rows = 300
	const days = 7
	fmt.Printf("replaying the 10-query workload for %d days (%d rows/table)...\n\n", days, rows)
	r, err := experiments.RunFig14(rows, 1, days)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.String())
	fmt.Println()
	fmt.Println("Why LRU loses (paper §V-E):")
	fmt.Println("  - the first access of every path each day always misses (the data")
	fmt.Println("    version changed overnight), while Maxson pre-parsed it at midnight;")
	fmt.Println("  - interleaved queries from other users evict values that correlated")
	fmt.Println("    queries would have reused.")
}
