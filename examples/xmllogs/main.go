// Command xmllogs demonstrates the paper's closing observation that
// Maxson's pre-caching technique applies to other semi-structured formats:
// XML machine logs are converted into canonical JSON at ingest, after which
// the complete pipeline — collection, prediction, scoring, caching, plan
// modification — works unchanged, and the queries address XML structure via
// JSONPaths like $.log.host.@name.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/sxml"
)

func main() {
	sys := maxson.NewSystem(maxson.SystemConfig{DefaultDB: "ops"})
	wh := sys.Warehouse()
	wh.CreateDatabase("ops")
	schema := maxson.Schema{Columns: []maxson.Column{
		{Name: "date", Type: maxson.TypeString},
		{Name: "event", Type: maxson.TypeString}, // XML converted to canonical JSON
	}}
	if err := wh.CreateTable("ops", "machine_logs", schema); err != nil {
		log.Fatal(err)
	}

	// Ingest: XML events arrive daily and are converted once at load time.
	levels := []string{"info", "warn", "error"}
	loadDay := func(day int) {
		var rows [][]maxson.Datum
		for i := 0; i < 30; i++ {
			xml := fmt.Sprintf(
				`<log ts="%d"><host name="node-%02d" rack="r%d"/><metric cpu="%d" mem="%d"/><level>%s</level></log>`,
				day*1000+i, i%8, i%4, (day*13+i*7)%100, (day*11+i*3)%100, levels[i%3])
			converted, err := sxml.ConvertString(xml)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, []maxson.Datum{
				maxson.Str(fmt.Sprintf("201902%02d", day)),
				maxson.Str(converted),
			})
		}
		if _, err := wh.AppendRows("ops", "machine_logs", rows); err != nil {
			log.Fatal(err)
		}
	}

	// The recurring query: error counts per host — XML structure addressed
	// through the canonical JSON mapping.
	sql := `SELECT get_json_object(event, '$.log.host.@name') AS host,
	               COUNT(*) AS errors
	        FROM ops.machine_logs
	        WHERE get_json_object(event, '$.log.level') = 'error'
	        GROUP BY get_json_object(event, '$.log.host.@name')
	        ORDER BY host`

	var before, after int64
	for day := 1; day <= 14; day++ {
		loadDay(day)
		sys.AdvanceClock(12 * time.Hour)
		for rep := 0; rep < 3; rep++ {
			_, m, err := sys.Query(sql)
			if err != nil {
				log.Fatal(err)
			}
			if day <= 9 {
				before += m.Parse.Docs.Load()
			} else {
				after += m.Parse.Docs.Load()
			}
		}
		sys.AdvanceToMidnight()
		if day >= 9 {
			if _, err := sys.RunMidnightCycle(); err != nil {
				log.Fatal(err)
			}
		}
	}

	rs, m, err := sys.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("error counts per host (XML logs, cache-served):")
	fmt.Print(rs.String())
	fmt.Printf("\ndocuments parsed for this query: %d\n", m.Parse.Docs.Load())
	fmt.Printf("days 1-9 (no cache):   %d docs parsed across recurring queries\n", before)
	fmt.Printf("days 10-14 (cached):   %d docs parsed\n", after)
}
